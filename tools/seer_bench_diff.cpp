/**
 * @file
 * seer-bench-diff: the perf-regression ledger's comparator (DESIGN.md
 * §17). Pairs a fresh BENCH_throughput.json against the committed one
 * level-by-level and exits nonzero when any paired metric regresses
 * past its tolerance band:
 *
 *     seer-bench-diff BASE.json FRESH.json [--tolerance F]
 *                     [--ratios-only] [--json]
 *
 * Metric classes and their bands:
 *   - throughput ("indexed.mps", "*_base_mps", "sharded.N.mps", ...):
 *     higher is better; regressed when fresh < base * (1 - tolerance)
 *     (default 0.10 — a 20% drop always trips it).
 *   - speedups ("speedup", "sharded_scaling", "prove_speedup"):
 *     higher is better, same relative band — these are
 *     machine-independent ratios, so they survive hardware changes.
 *   - overheads ("*_overhead"): lower is better; regressed when
 *     fresh > base + 0.10 absolute (overheads are small fractions, a
 *     relative band on 0.01 would be noise-trippable).
 *   - "profile_tagged_fraction": higher is better, 0.10 absolute band.
 *
 * A metric present in the base but missing from the fresh run is a
 * regression (the fresh sweep silently lost a path); metrics only the
 * fresh run has are reported as new and pass. --ratios-only drops the
 * absolute-throughput class, which is how CI compares runs across
 * heterogeneous runners without chasing hardware deltas. --json emits
 * the same verdicts as one machine-readable document on stdout.
 *
 * Exit: 0 clean, 1 regression, 2 usage or unreadable input.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/** Metrics for one in-flight level: flat name → value. */
using LevelMetrics = std::map<std::string, double>;

/** All levels of one bench document, keyed by in-flight depth. */
using BenchMetrics = std::map<int, LevelMetrics>;

enum class MetricClass
{
    Throughput,   ///< higher better, relative band
    Ratio,        ///< higher better, relative band, hw-independent
    Overhead,     ///< lower better, absolute band
    TaggedFloor,  ///< higher better, absolute band
    Ignore,       ///< latencies, counters, wall clock — not gated
};

MetricClass
classify(const std::string &name)
{
    auto ends_with = [&name](const char *suffix) {
        std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("_overhead"))
        return MetricClass::Overhead;
    if (name == "speedup" || name == "sharded_scaling" ||
        name == "prove_speedup")
        return MetricClass::Ratio;
    if (name == "profile_tagged_fraction")
        return MetricClass::TaggedFloor;
    if (ends_with(".mps") || ends_with("_mps"))
        return MetricClass::Throughput;
    return MetricClass::Ignore;
}

/**
 * Pull the gated metrics out of one BENCH_throughput.json. Not a
 * general JSON parser — just enough for the document this repo's
 * bench writes: per level, the path objects' "mps" fields become
 * "<path>.mps", the "sharded" array becomes "sharded.<threads>.mps",
 * and bare numeric fields keep their key.
 */
bool
parseBench(const std::string &path, BenchMetrics &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "seer-bench-diff: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    if (text.find("\"bench\": \"throughput\"") == std::string::npos &&
        text.find("\"bench\":\"throughput\"") == std::string::npos) {
        std::cerr << "seer-bench-diff: " << path
                  << " is not a throughput bench document\n";
        return false;
    }

    // Split the document into per-level chunks at each "inflight" key;
    // everything before the first one (the header) carries no gated
    // metrics.
    std::vector<std::size_t> starts;
    std::size_t pos = 0;
    while ((pos = text.find("\"inflight\":", pos)) !=
           std::string::npos) {
        starts.push_back(pos);
        pos += 11;
    }
    if (starts.empty()) {
        std::cerr << "seer-bench-diff: no levels in " << path << "\n";
        return false;
    }
    for (std::size_t i = 0; i < starts.size(); ++i) {
        std::size_t begin = starts[i];
        std::size_t end =
            i + 1 < starts.size() ? starts[i + 1] : text.size();
        std::string chunk = text.substr(begin, end - begin);
        int inflight = std::atoi(chunk.c_str() + 11);
        LevelMetrics &metrics = out[inflight];

        // Walk "name": value pairs. Objects contribute their "mps"
        // field under "<name>.mps"; the "sharded" array contributes
        // one metric per thread count; bare numbers keep their key.
        std::size_t at = 0;
        while ((at = chunk.find('"', at)) != std::string::npos) {
            std::size_t name_end = chunk.find('"', at + 1);
            if (name_end == std::string::npos)
                break;
            std::string name =
                chunk.substr(at + 1, name_end - at - 1);
            std::size_t after = name_end + 1;
            while (after < chunk.size() &&
                   (chunk[after] == ':' || chunk[after] == ' '))
                ++after;
            if (after >= chunk.size()) {
                break;
            } else if (name == "sharded" && chunk[after] == '[') {
                std::size_t close = chunk.find(']', after);
                std::string arr = chunk.substr(
                    after, close == std::string::npos
                               ? std::string::npos
                               : close - after);
                std::size_t t = 0;
                while ((t = arr.find("\"threads\":", t)) !=
                       std::string::npos) {
                    int threads = std::atoi(arr.c_str() + t + 10);
                    std::size_t m = arr.find("\"mps\":", t);
                    if (m == std::string::npos)
                        break;
                    metrics["sharded." + std::to_string(threads) +
                            ".mps"] = std::atof(arr.c_str() + m + 6);
                    t = m + 6;
                }
                at = close == std::string::npos ? chunk.size()
                                                : close + 1;
                continue;
            } else if (chunk[after] == '{') {
                std::size_t m = chunk.find("\"mps\":", after);
                std::size_t close = chunk.find('}', after);
                if (m != std::string::npos &&
                    (close == std::string::npos || m < close)) {
                    metrics[name + ".mps"] =
                        std::atof(chunk.c_str() + m + 6);
                }
                at = close == std::string::npos ? chunk.size()
                                                : close + 1;
                continue;
            } else if (std::isdigit(
                           static_cast<unsigned char>(chunk[after])) ||
                       chunk[after] == '-') {
                if (name != "inflight")
                    metrics[name] = std::atof(chunk.c_str() + after);
            }
            at = name_end + 1;
        }
    }
    return true;
}

struct Verdict
{
    int inflight = 0;
    std::string metric;
    double base = 0.0;
    double fresh = 0.0;
    bool missing = false;   ///< base had it, fresh lost it
    bool regressed = false;
};

} // namespace

int
main(int argc, char **argv)
{
    double tolerance = 0.10;
    bool ratios_only = false;
    bool json = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 &&
            i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
            if (tolerance <= 0.0 || tolerance >= 1.0) {
                std::fprintf(stderr,
                             "--tolerance wants a fraction in "
                             "(0, 1)\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--ratios-only") == 0) {
            ratios_only = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: %s BASE.json FRESH.json "
                         "[--tolerance F] [--ratios-only] [--json]\n",
                         argv[0]);
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "usage: %s BASE.json FRESH.json [--tolerance F] "
                     "[--ratios-only] [--json]\n",
                     argv[0]);
        return 2;
    }

    BenchMetrics base;
    BenchMetrics fresh;
    if (!parseBench(paths[0], base) || !parseBench(paths[1], fresh))
        return 2;

    std::vector<Verdict> verdicts;
    std::size_t fresh_only = 0;
    for (const auto &[inflight, base_metrics] : base) {
        auto fresh_level = fresh.find(inflight);
        for (const auto &[name, base_value] : base_metrics) {
            MetricClass cls = classify(name);
            if (cls == MetricClass::Ignore)
                continue;
            if (ratios_only && cls == MetricClass::Throughput)
                continue;
            Verdict verdict;
            verdict.inflight = inflight;
            verdict.metric = name;
            verdict.base = base_value;
            auto fresh_metric =
                fresh_level != fresh.end()
                    ? fresh_level->second.find(name)
                    : LevelMetrics::iterator{};
            if (fresh_level == fresh.end() ||
                fresh_metric == fresh_level->second.end()) {
                // The fresh sweep silently lost a measured path — the
                // exact failure a ledger exists to catch.
                verdict.missing = true;
                verdict.regressed = true;
            } else {
                verdict.fresh = fresh_metric->second;
                switch (cls) {
                case MetricClass::Throughput:
                case MetricClass::Ratio:
                    verdict.regressed =
                        verdict.fresh <
                        verdict.base * (1.0 - tolerance);
                    break;
                case MetricClass::Overhead:
                    verdict.regressed =
                        verdict.fresh > verdict.base + 0.10;
                    break;
                case MetricClass::TaggedFloor:
                    verdict.regressed =
                        verdict.fresh < verdict.base - 0.10;
                    break;
                case MetricClass::Ignore:
                    break;
                }
            }
            verdicts.push_back(verdict);
        }
    }
    for (const auto &[inflight, fresh_metrics] : fresh) {
        auto base_level = base.find(inflight);
        for (const auto &[name, value] : fresh_metrics) {
            if (classify(name) == MetricClass::Ignore)
                continue;
            if (base_level == base.end() ||
                base_level->second.find(name) ==
                    base_level->second.end())
                ++fresh_only;
        }
    }

    std::size_t regressions = 0;
    for (const Verdict &verdict : verdicts)
        if (verdict.regressed)
            ++regressions;

    if (json) {
        std::ostringstream out;
        out.setf(std::ios::fixed);
        out.precision(3);
        out << "{\"kind\": \"BENCH_DIFF\", \"base\": \"" << paths[0]
            << "\", \"fresh\": \"" << paths[1]
            << "\", \"tolerance\": " << tolerance
            << ", \"compared\": " << verdicts.size()
            << ", \"new_metrics\": " << fresh_only
            << ", \"regressions\": [";
        bool first = true;
        for (const Verdict &verdict : verdicts) {
            if (!verdict.regressed)
                continue;
            out << (first ? "" : ", ") << "{\"inflight\": "
                << verdict.inflight << ", \"metric\": \""
                << verdict.metric << "\", \"base\": " << verdict.base
                << ", \"fresh\": "
                << (verdict.missing ? -1.0 : verdict.fresh) << "}";
            first = false;
        }
        out << "]}\n";
        std::fputs(out.str().c_str(), stdout);
    } else {
        std::printf("bench diff: %s vs %s (%zu metrics, tolerance "
                    "%.0f%%%s)\n",
                    paths[0].c_str(), paths[1].c_str(),
                    verdicts.size(), 100.0 * tolerance,
                    ratios_only ? ", ratios only" : "");
        for (const Verdict &verdict : verdicts) {
            if (!verdict.regressed)
                continue;
            if (verdict.missing) {
                std::printf("  [%d in-flight] %s: base %.3f, MISSING "
                            "from fresh run\n",
                            verdict.inflight, verdict.metric.c_str(),
                            verdict.base);
            } else {
                double delta =
                    verdict.base != 0.0
                        ? 100.0 * (verdict.fresh / verdict.base - 1.0)
                        : 0.0;
                std::printf("  [%d in-flight] %s: base %.3f fresh "
                            "%.3f (%+.1f%%) REGRESSED\n",
                            verdict.inflight, verdict.metric.c_str(),
                            verdict.base, verdict.fresh, delta);
            }
        }
        if (fresh_only > 0)
            std::printf("  %zu new metric%s in the fresh run (not "
                        "gated)\n",
                        fresh_only, fresh_only == 1 ? "" : "s");
    }

    if (regressions > 0) {
        std::fprintf(stderr, "FAIL: %zu metric%s regressed\n",
                     regressions, regressions == 1 ? "" : "s");
        return 1;
    }
    if (!json)
        std::printf("ok: no regressions\n");
    return 0;
}
