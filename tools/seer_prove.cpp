/**
 * @file
 * seer-prove: the static interference & ambiguity analysis as a
 * command-line tool (DESIGN.md §15).
 *
 * Runs the whole-model-set product-walk analysis over one or more
 * serialized bundles, prints SL020-SL023 findings with file:line
 * locations, and can persist the proven AmbiguityCertificate back
 * into a model file for the checker's fast-path dispatch. Exit status
 * mirrors seer-lint: 0 clean, 1 findings at or above the gating
 * severity, 2 usage or I/O failure.
 *
 *     seer-prove [options] model-file...
 *
 * Options:
 *     --json                    machine-readable report + verdict table
 *     --werror                  gate on warnings as well as errors
 *     --certificate-out FILE    rewrite the (single) input bundle with
 *                               the certificate embedded
 *     --max-fanout N            checker hypothesis cap (SL022 context)
 *     --numbers-as-identifiers  <num> placeholders count as instance ids
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/interference.hpp"
#include "core/checker/check_types.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/mining/model_io.hpp"

namespace {

using namespace cloudseer;

int
usage(std::ostream &out, int status)
{
    out << "usage: seer-prove [options] model-file...\n"
           "options:\n"
           "  --json                    JSON report + verdict table\n"
           "  --werror                  nonzero exit on warnings too\n"
           "  --certificate-out FILE    write bundle + certificate\n"
           "  --max-fanout N            checker hypothesis cap (SL022)\n"
           "  --numbers-as-identifiers  <num> counts as an instance id\n";
    return status;
}

/** file:line prefix for a finding, best-effort via the source map. */
std::string
location(const std::string &file, const core::ModelBundle &bundle,
         const core::ModelSourceMap &sources,
         const analysis::Diagnostic &diagnostic)
{
    int line = 0;
    for (std::size_t i = 0; i < bundle.automata.size(); ++i) {
        if (bundle.automata[i].name() != diagnostic.automaton)
            continue;
        if (diagnostic.isEdge)
            line = sources.edgeLine(i, diagnostic.eventA,
                                    diagnostic.eventB);
        if (line == 0 && diagnostic.eventA >= 0)
            line = sources.eventLine(i, diagnostic.eventA);
        if (line == 0)
            line = sources.declLine(i);
        break;
    }
    if (line == 0)
        return file;
    return file + ":" + std::to_string(line);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    analysis::InterferenceOptions options;
    options.maxForkFanout = core::kDefaultMaxForkFanout;
    bool json = false;
    bool werror = false;
    std::string certificate_out;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "seer-prove: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--certificate-out") {
            certificate_out = next("--certificate-out");
        } else if (arg == "--max-fanout") {
            options.maxForkFanout =
                static_cast<int>(std::stoul(next("--max-fanout")));
        } else if (arg == "--numbers-as-identifiers") {
            options.numbersAsIdentifiers = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "seer-prove: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage(std::cerr, 2);
    if (!certificate_out.empty() && files.size() != 1) {
        std::cerr << "seer-prove: --certificate-out takes exactly one "
                     "input bundle\n";
        return 2;
    }

    bool gate = false;
    for (const std::string &file : files) {
        std::ifstream in(file);
        if (!in) {
            std::cerr << "seer-prove: cannot open " << file << "\n";
            return 2;
        }
        core::ModelSourceMap sources;
        auto bundle = core::loadModels(in, &sources);
        if (!bundle) {
            std::cerr << "seer-prove: " << file
                      << ": not a valid model bundle\n";
            return 2;
        }
        analysis::InterferenceResult result = analysis::analyzeInterference(
            bundle->automata, *bundle->catalog, options);
        std::vector<const core::TaskAutomaton *> automata;
        for (const core::TaskAutomaton &automaton : bundle->automata)
            automata.push_back(&automaton);
        result.certificate.modelFingerprint =
            core::modelFingerprint(automata);
        if (json) {
            std::cout << analysis::proveReportJson(
                result.report, result.certificate, *bundle->catalog);
        } else {
            for (const analysis::Diagnostic &diagnostic :
                 result.report.diagnostics) {
                std::cout
                    << location(file, *bundle, sources, diagnostic)
                    << ": " << analysis::severityName(diagnostic.severity)
                    << ": [" << diagnostic.id << "] ";
                if (!diagnostic.automaton.empty())
                    std::cout << diagnostic.automaton << ": ";
                std::cout << diagnostic.message << "\n";
            }
            std::cout << file << ": " << result.report.automataChecked
                      << " automata, "
                      << result.certificate.verdicts.size()
                      << " signatures ("
                      << result.certificate.certifiedCount()
                      << " certified unambiguous), "
                      << result.report.count(analysis::Severity::Error)
                      << " error(s), "
                      << result.report.count(analysis::Severity::Warning)
                      << " warning(s), "
                      << result.report.count(analysis::Severity::Info)
                      << " info(s)\n";
        }
        if (!certificate_out.empty()) {
            std::ofstream out(certificate_out,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                std::cerr << "seer-prove: cannot write "
                          << certificate_out << "\n";
                return 2;
            }
            core::saveModels(out, *bundle->catalog, bundle->automata,
                             bundle->profiles,
                             result.certificate.toRecord());
        }
        gate = gate || result.report.hasErrors() ||
               (werror &&
                result.report.count(analysis::Severity::Warning) > 0);
    }
    return gate ? 1 : 0;
}
