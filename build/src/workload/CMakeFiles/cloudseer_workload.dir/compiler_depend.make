# Empty compiler generated dependencies file for cloudseer_workload.
# This may be replaced when dependencies are built.
