file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_workload.dir/workload_generator.cpp.o"
  "CMakeFiles/cloudseer_workload.dir/workload_generator.cpp.o.d"
  "libcloudseer_workload.a"
  "libcloudseer_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
