file(REMOVE_RECURSE
  "libcloudseer_workload.a"
)
