file(REMOVE_RECURSE
  "libcloudseer_logging.a"
)
