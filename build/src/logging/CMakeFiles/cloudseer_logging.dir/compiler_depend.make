# Empty compiler generated dependencies file for cloudseer_logging.
# This may be replaced when dependencies are built.
