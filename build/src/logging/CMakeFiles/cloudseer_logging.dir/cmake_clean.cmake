file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_logging.dir/log_codec.cpp.o"
  "CMakeFiles/cloudseer_logging.dir/log_codec.cpp.o.d"
  "CMakeFiles/cloudseer_logging.dir/log_level.cpp.o"
  "CMakeFiles/cloudseer_logging.dir/log_level.cpp.o.d"
  "CMakeFiles/cloudseer_logging.dir/log_record.cpp.o"
  "CMakeFiles/cloudseer_logging.dir/log_record.cpp.o.d"
  "CMakeFiles/cloudseer_logging.dir/template_catalog.cpp.o"
  "CMakeFiles/cloudseer_logging.dir/template_catalog.cpp.o.d"
  "CMakeFiles/cloudseer_logging.dir/variable_extractor.cpp.o"
  "CMakeFiles/cloudseer_logging.dir/variable_extractor.cpp.o.d"
  "libcloudseer_logging.a"
  "libcloudseer_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
