
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logging/log_codec.cpp" "src/logging/CMakeFiles/cloudseer_logging.dir/log_codec.cpp.o" "gcc" "src/logging/CMakeFiles/cloudseer_logging.dir/log_codec.cpp.o.d"
  "/root/repo/src/logging/log_level.cpp" "src/logging/CMakeFiles/cloudseer_logging.dir/log_level.cpp.o" "gcc" "src/logging/CMakeFiles/cloudseer_logging.dir/log_level.cpp.o.d"
  "/root/repo/src/logging/log_record.cpp" "src/logging/CMakeFiles/cloudseer_logging.dir/log_record.cpp.o" "gcc" "src/logging/CMakeFiles/cloudseer_logging.dir/log_record.cpp.o.d"
  "/root/repo/src/logging/template_catalog.cpp" "src/logging/CMakeFiles/cloudseer_logging.dir/template_catalog.cpp.o" "gcc" "src/logging/CMakeFiles/cloudseer_logging.dir/template_catalog.cpp.o.d"
  "/root/repo/src/logging/variable_extractor.cpp" "src/logging/CMakeFiles/cloudseer_logging.dir/variable_extractor.cpp.o" "gcc" "src/logging/CMakeFiles/cloudseer_logging.dir/variable_extractor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cloudseer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
