# Empty compiler generated dependencies file for cloudseer_collect.
# This may be replaced when dependencies are built.
