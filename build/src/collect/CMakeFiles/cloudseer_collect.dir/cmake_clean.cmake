file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_collect.dir/log_store.cpp.o"
  "CMakeFiles/cloudseer_collect.dir/log_store.cpp.o.d"
  "CMakeFiles/cloudseer_collect.dir/node_sinks.cpp.o"
  "CMakeFiles/cloudseer_collect.dir/node_sinks.cpp.o.d"
  "CMakeFiles/cloudseer_collect.dir/stream_merger.cpp.o"
  "CMakeFiles/cloudseer_collect.dir/stream_merger.cpp.o.d"
  "libcloudseer_collect.a"
  "libcloudseer_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
