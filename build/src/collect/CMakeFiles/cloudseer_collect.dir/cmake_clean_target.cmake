file(REMOVE_RECURSE
  "libcloudseer_collect.a"
)
