file(REMOVE_RECURSE
  "libcloudseer_common.a"
)
