file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_common.dir/error.cpp.o"
  "CMakeFiles/cloudseer_common.dir/error.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/rng.cpp.o"
  "CMakeFiles/cloudseer_common.dir/rng.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/stats.cpp.o"
  "CMakeFiles/cloudseer_common.dir/stats.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/string_util.cpp.o"
  "CMakeFiles/cloudseer_common.dir/string_util.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/table.cpp.o"
  "CMakeFiles/cloudseer_common.dir/table.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/time_util.cpp.o"
  "CMakeFiles/cloudseer_common.dir/time_util.cpp.o.d"
  "CMakeFiles/cloudseer_common.dir/uuid.cpp.o"
  "CMakeFiles/cloudseer_common.dir/uuid.cpp.o.d"
  "libcloudseer_common.a"
  "libcloudseer_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
