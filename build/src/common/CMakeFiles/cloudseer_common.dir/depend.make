# Empty dependencies file for cloudseer_common.
# This may be replaced when dependencies are built.
