
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/offline_detector.cpp" "src/baseline/CMakeFiles/cloudseer_baseline.dir/offline_detector.cpp.o" "gcc" "src/baseline/CMakeFiles/cloudseer_baseline.dir/offline_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logging/CMakeFiles/cloudseer_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cloudseer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
