file(REMOVE_RECURSE
  "libcloudseer_baseline.a"
)
