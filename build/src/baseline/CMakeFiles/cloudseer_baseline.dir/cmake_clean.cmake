file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_baseline.dir/offline_detector.cpp.o"
  "CMakeFiles/cloudseer_baseline.dir/offline_detector.cpp.o.d"
  "libcloudseer_baseline.a"
  "libcloudseer_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
