# Empty dependencies file for cloudseer_baseline.
# This may be replaced when dependencies are built.
