file(REMOVE_RECURSE
  "libcloudseer_eval.a"
)
