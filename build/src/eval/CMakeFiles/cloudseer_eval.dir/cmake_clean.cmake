file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_eval.dir/accuracy_harness.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/accuracy_harness.cpp.o.d"
  "CMakeFiles/cloudseer_eval.dir/detection_harness.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/detection_harness.cpp.o.d"
  "CMakeFiles/cloudseer_eval.dir/experiment_config.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/experiment_config.cpp.o.d"
  "CMakeFiles/cloudseer_eval.dir/modeling_harness.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/modeling_harness.cpp.o.d"
  "CMakeFiles/cloudseer_eval.dir/streaming_session.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/streaming_session.cpp.o.d"
  "CMakeFiles/cloudseer_eval.dir/timeout_learning.cpp.o"
  "CMakeFiles/cloudseer_eval.dir/timeout_learning.cpp.o.d"
  "libcloudseer_eval.a"
  "libcloudseer_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
