# Empty compiler generated dependencies file for cloudseer_eval.
# This may be replaced when dependencies are built.
