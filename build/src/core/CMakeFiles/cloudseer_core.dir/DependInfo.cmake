
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/automaton/automaton_instance.cpp" "src/core/CMakeFiles/cloudseer_core.dir/automaton/automaton_instance.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/automaton/automaton_instance.cpp.o.d"
  "/root/repo/src/core/automaton/refinement.cpp" "src/core/CMakeFiles/cloudseer_core.dir/automaton/refinement.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/automaton/refinement.cpp.o.d"
  "/root/repo/src/core/automaton/task_automaton.cpp" "src/core/CMakeFiles/cloudseer_core.dir/automaton/task_automaton.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/automaton/task_automaton.cpp.o.d"
  "/root/repo/src/core/checker/automaton_group.cpp" "src/core/CMakeFiles/cloudseer_core.dir/checker/automaton_group.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/checker/automaton_group.cpp.o.d"
  "/root/repo/src/core/checker/identifier_set.cpp" "src/core/CMakeFiles/cloudseer_core.dir/checker/identifier_set.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/checker/identifier_set.cpp.o.d"
  "/root/repo/src/core/checker/interleaved_checker.cpp" "src/core/CMakeFiles/cloudseer_core.dir/checker/interleaved_checker.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/checker/interleaved_checker.cpp.o.d"
  "/root/repo/src/core/mining/dependency_miner.cpp" "src/core/CMakeFiles/cloudseer_core.dir/mining/dependency_miner.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/mining/dependency_miner.cpp.o.d"
  "/root/repo/src/core/mining/model_builder.cpp" "src/core/CMakeFiles/cloudseer_core.dir/mining/model_builder.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/mining/model_builder.cpp.o.d"
  "/root/repo/src/core/mining/model_io.cpp" "src/core/CMakeFiles/cloudseer_core.dir/mining/model_io.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/mining/model_io.cpp.o.d"
  "/root/repo/src/core/mining/preprocessor.cpp" "src/core/CMakeFiles/cloudseer_core.dir/mining/preprocessor.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/mining/preprocessor.cpp.o.d"
  "/root/repo/src/core/monitor/report.cpp" "src/core/CMakeFiles/cloudseer_core.dir/monitor/report.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/monitor/report.cpp.o.d"
  "/root/repo/src/core/monitor/report_json.cpp" "src/core/CMakeFiles/cloudseer_core.dir/monitor/report_json.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/monitor/report_json.cpp.o.d"
  "/root/repo/src/core/monitor/timeout_estimator.cpp" "src/core/CMakeFiles/cloudseer_core.dir/monitor/timeout_estimator.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/monitor/timeout_estimator.cpp.o.d"
  "/root/repo/src/core/monitor/workflow_monitor.cpp" "src/core/CMakeFiles/cloudseer_core.dir/monitor/workflow_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cloudseer_core.dir/monitor/workflow_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logging/CMakeFiles/cloudseer_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cloudseer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
