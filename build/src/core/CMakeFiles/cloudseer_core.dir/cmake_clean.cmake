file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_core.dir/automaton/automaton_instance.cpp.o"
  "CMakeFiles/cloudseer_core.dir/automaton/automaton_instance.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/automaton/refinement.cpp.o"
  "CMakeFiles/cloudseer_core.dir/automaton/refinement.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/automaton/task_automaton.cpp.o"
  "CMakeFiles/cloudseer_core.dir/automaton/task_automaton.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/checker/automaton_group.cpp.o"
  "CMakeFiles/cloudseer_core.dir/checker/automaton_group.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/checker/identifier_set.cpp.o"
  "CMakeFiles/cloudseer_core.dir/checker/identifier_set.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/checker/interleaved_checker.cpp.o"
  "CMakeFiles/cloudseer_core.dir/checker/interleaved_checker.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/mining/dependency_miner.cpp.o"
  "CMakeFiles/cloudseer_core.dir/mining/dependency_miner.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/mining/model_builder.cpp.o"
  "CMakeFiles/cloudseer_core.dir/mining/model_builder.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/mining/model_io.cpp.o"
  "CMakeFiles/cloudseer_core.dir/mining/model_io.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/mining/preprocessor.cpp.o"
  "CMakeFiles/cloudseer_core.dir/mining/preprocessor.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/monitor/report.cpp.o"
  "CMakeFiles/cloudseer_core.dir/monitor/report.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/monitor/report_json.cpp.o"
  "CMakeFiles/cloudseer_core.dir/monitor/report_json.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/monitor/timeout_estimator.cpp.o"
  "CMakeFiles/cloudseer_core.dir/monitor/timeout_estimator.cpp.o.d"
  "CMakeFiles/cloudseer_core.dir/monitor/workflow_monitor.cpp.o"
  "CMakeFiles/cloudseer_core.dir/monitor/workflow_monitor.cpp.o.d"
  "libcloudseer_core.a"
  "libcloudseer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
