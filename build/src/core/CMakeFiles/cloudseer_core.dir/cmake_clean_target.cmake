file(REMOVE_RECURSE
  "libcloudseer_core.a"
)
