# Empty compiler generated dependencies file for cloudseer_core.
# This may be replaced when dependencies are built.
