file(REMOVE_RECURSE
  "libcloudseer_sim.a"
)
