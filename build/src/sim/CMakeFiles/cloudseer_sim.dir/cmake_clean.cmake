file(REMOVE_RECURSE
  "CMakeFiles/cloudseer_sim.dir/cluster.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/event_queue.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/fault_injector.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/fault_injector.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/flows.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/flows.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/simulation.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/cloudseer_sim.dir/task_type.cpp.o"
  "CMakeFiles/cloudseer_sim.dir/task_type.cpp.o.d"
  "libcloudseer_sim.a"
  "libcloudseer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudseer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
