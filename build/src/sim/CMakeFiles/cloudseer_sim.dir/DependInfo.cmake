
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault_injector.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/fault_injector.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/fault_injector.cpp.o.d"
  "/root/repo/src/sim/flows.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/flows.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/flows.cpp.o.d"
  "/root/repo/src/sim/ground_truth.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/ground_truth.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/ground_truth.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/task_type.cpp" "src/sim/CMakeFiles/cloudseer_sim.dir/task_type.cpp.o" "gcc" "src/sim/CMakeFiles/cloudseer_sim.dir/task_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logging/CMakeFiles/cloudseer_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cloudseer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
