# Empty compiler generated dependencies file for cloudseer_sim.
# This may be replaced when dependencies are built.
