file(REMOVE_RECURSE
  "CMakeFiles/wire_replay.dir/wire_replay.cpp.o"
  "CMakeFiles/wire_replay.dir/wire_replay.cpp.o.d"
  "wire_replay"
  "wire_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
