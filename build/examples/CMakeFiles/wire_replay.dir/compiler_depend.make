# Empty compiler generated dependencies file for wire_replay.
# This may be replaced when dependencies are built.
