# Empty compiler generated dependencies file for mining_explorer.
# This may be replaced when dependencies are built.
