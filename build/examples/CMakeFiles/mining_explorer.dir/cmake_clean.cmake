file(REMOVE_RECURSE
  "CMakeFiles/mining_explorer.dir/mining_explorer.cpp.o"
  "CMakeFiles/mining_explorer.dir/mining_explorer.cpp.o.d"
  "mining_explorer"
  "mining_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
