# Empty compiler generated dependencies file for monitor_cloud.
# This may be replaced when dependencies are built.
