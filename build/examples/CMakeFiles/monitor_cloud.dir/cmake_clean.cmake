file(REMOVE_RECURSE
  "CMakeFiles/monitor_cloud.dir/monitor_cloud.cpp.o"
  "CMakeFiles/monitor_cloud.dir/monitor_cloud.cpp.o.d"
  "monitor_cloud"
  "monitor_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
