
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/streaming_test.cpp" "tests/CMakeFiles/streaming_test.dir/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/streaming_test.dir/streaming_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/cloudseer_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cloudseer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cloudseer_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cloudseer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/cloudseer_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cloudseer_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/cloudseer_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cloudseer_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
