file(REMOVE_RECURSE
  "CMakeFiles/checker_property_test.dir/checker_property_test.cpp.o"
  "CMakeFiles/checker_property_test.dir/checker_property_test.cpp.o.d"
  "checker_property_test"
  "checker_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
