# Empty dependencies file for bench_table2_automata.
# This may be replaced when dependencies are built.
