file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_automata.dir/bench_table2_automata.cpp.o"
  "CMakeFiles/bench_table2_automata.dir/bench_table2_automata.cpp.o.d"
  "bench_table2_automata"
  "bench_table2_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
