# Empty compiler generated dependencies file for bench_timeout_sweep.
# This may be replaced when dependencies are built.
