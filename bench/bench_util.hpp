/**
 * @file
 * Shared helpers for the evaluation benches: paper-scale modeling and
 * dataset construction for the Table 3 experiment matrix.
 */

#ifndef CLOUDSEER_BENCH_BENCH_UTIL_HPP
#define CLOUDSEER_BENCH_BENCH_UTIL_HPP

#include <cstdio>

#include "eval/accuracy_harness.hpp"
#include "eval/experiment_config.hpp"
#include "eval/modeling_harness.hpp"

namespace cloudseer::bench {

/**
 * Offline models at paper scale: convergence-driven with the paper's
 * 800-run cap. Built once per process.
 */
inline const eval::ModeledSystem &
paperModels()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 100;
        config.checkEvery = 20;
        config.stableChecks = 5;
        config.maxRuns = 800;
        return eval::buildModels(config);
    }();
    return system;
}

/** Checking-time shipping model: healthy, with a small slow tail. */
inline collect::ShippingConfig
checkingShipping()
{
    collect::ShippingConfig config;
    config.tailProbability = 0.005;
    config.tailMin = 0.05;
    config.tailMax = 0.4;
    return config;
}

/** Dataset config for one Table 3 group/repeat. */
inline eval::DatasetConfig
datasetFor(const eval::ExperimentGroup &group, int dataset)
{
    eval::DatasetConfig config;
    config.users = group.users;
    config.singleUid = group.singleUid;
    config.tasksPerUser = group.tasksPerUser;
    config.seed = eval::datasetSeed(group.group, dataset);
    config.shipping = checkingShipping();
    return config;
}

/** Print a header for one reproduced table. */
inline void
printHeader(const char *table, const char *title)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s — %s\n", table, title);
    std::printf("==============================================="
                "=====================\n");
}

} // namespace cloudseer::bench

#endif // CLOUDSEER_BENCH_BENCH_UTIL_HPP
