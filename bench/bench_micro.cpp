/**
 * @file
 * Google-benchmark microbenchmarks for the hot paths of the checking
 * pipeline: template extraction, identifier-set operations, automaton
 * transitions, mining, and end-to-end per-message monitoring cost.
 */

#include <benchmark/benchmark.h>

#include "common/uuid.hpp"
#include "core/mining/dependency_miner.hpp"
#include "core/mining/model_builder.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "logging/variable_extractor.hpp"

using namespace cloudseer;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 60;
        config.checkEvery = 20;
        config.stableChecks = 3;
        config.maxRuns = 300;
        return eval::buildModels(config);
    }();
    return system;
}

const eval::GeneratedDataset &
dataset()
{
    static eval::GeneratedDataset generated = [] {
        eval::DatasetConfig config;
        config.users = 4;
        config.tasksPerUser = 40;
        config.seed = 77;
        return eval::generateDataset(config);
    }();
    return generated;
}

void
BM_VariableExtraction(benchmark::State &state)
{
    logging::VariableExtractor extractor;
    const std::string body =
        "[req-11111111-2222-3333-4444-555555555555] 10.1.2.3 "
        "\"POST /v2/aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee/servers "
        "HTTP/1.1\" status: 202 len: 1748";
    for (auto _ : state) {
        benchmark::DoNotOptimize(extractor.parse(body));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VariableExtraction);

void
BM_IdentifierSetOverlap(benchmark::State &state)
{
    common::Rng rng(1);
    logging::IdentifierInterner &interner =
        logging::IdentifierInterner::process();
    std::vector<logging::IdToken> pool;
    for (int i = 0; i < 24; ++i)
        pool.push_back(interner.intern(common::makeUuid(rng)));
    core::IdentifierSet set(pool);
    std::vector<logging::IdToken> probe = core::IdentifierSet::dedupSorted(
        {pool[3], pool[9], interner.intern(common::makeUuid(rng))});
    for (auto _ : state) {
        benchmark::DoNotOptimize(set.overlap(probe));
        benchmark::DoNotOptimize(set.symmetricDifference(probe));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IdentifierSetOverlap);

void
BM_IdentifierIntern(benchmark::State &state)
{
    common::Rng rng(2);
    std::vector<std::string> ids;
    for (int i = 0; i < 256; ++i)
        ids.push_back(common::makeUuid(rng));
    logging::IdentifierInterner &interner =
        logging::IdentifierInterner::process();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(interner.intern(ids[i % ids.size()]));
        ++i;
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IdentifierIntern);

void
BM_TemplateCatalogFind(benchmark::State &state)
{
    const eval::ModeledSystem &system = models();
    logging::VariableExtractor extractor;
    const std::string body =
        "[req-11111111-2222-3333-4444-555555555555] starting boot";
    logging::ParsedBody parsed = extractor.parse(body);
    system.catalog->intern("nova", parsed.templateText);
    for (auto _ : state) {
        // Heterogeneous lookup: no key string is materialised.
        benchmark::DoNotOptimize(
            system.catalog->find("nova", parsed.templateText));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TemplateCatalogFind);

void
BM_AutomatonWalk(benchmark::State &state)
{
    const core::TaskAutomaton &boot = models().automata[0];
    // One full accepting walk through the boot automaton per iteration.
    std::vector<logging::TemplateId> order;
    {
        core::AutomatonInstance probe(&boot);
        while (!probe.accepting()) {
            auto expected = probe.expectedTemplates();
            order.push_back(expected.front());
            probe.consume(expected.front());
        }
    }
    for (auto _ : state) {
        core::AutomatonInstance instance(&boot);
        for (logging::TemplateId tpl : order)
            benchmark::DoNotOptimize(instance.consume(tpl));
        benchmark::DoNotOptimize(instance.accepting());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * order.size()));
}
BENCHMARK(BM_AutomatonWalk);

void
BM_TransitiveReduction(benchmark::State &state)
{
    int n = static_cast<int>(state.range(0));
    std::vector<std::pair<int, int>> order;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            order.emplace_back(a, b);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::transitiveReduction(n, order));
    }
}
BENCHMARK(BM_TransitiveReduction)->Arg(10)->Arg(23)->Arg(40);

void
BM_MineBootDependencies(benchmark::State &state)
{
    // Mining cost over the run count (the modeling loop's inner step).
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    core::TaskModeler modeler(*catalog);
    sim::SimConfig sim_config;
    sim_config.enableNoise = false;
    sim::Simulation simulation(sim_config, 5);
    sim::UserProfile user = simulation.makeUser();
    std::vector<core::TemplateSequence> runs;
    std::size_t cursor = 0;
    for (int r = 0; r < static_cast<int>(state.range(0)); ++r) {
        sim::VmHandle vm = simulation.makeVm();
        simulation.submit(sim::TaskType::Boot, r * 30.0, user, vm);
        simulation.run();
        std::vector<logging::LogRecord> window(
            simulation.records().begin() + static_cast<long>(cursor),
            simulation.records().end());
        cursor = simulation.records().size();
        runs.push_back(modeler.toTemplateSequence(window));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            modeler.buildAutomaton("boot", runs));
    }
}
BENCHMARK(BM_MineBootDependencies)->Arg(20)->Arg(100);

void
BM_MonitorFeedThroughput(benchmark::State &state)
{
    const eval::GeneratedDataset &data = dataset();
    core::MonitorConfig config;
    for (auto _ : state) {
        core::WorkflowMonitor monitor(config, models().catalog,
                                      models().automataCopy());
        for (const logging::LogRecord &record : data.stream)
            benchmark::DoNotOptimize(monitor.feed(record));
        benchmark::DoNotOptimize(monitor.finish());
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * data.stream.size()));
    state.counters["msgs"] =
        static_cast<double>(data.stream.size());
}
BENCHMARK(BM_MonitorFeedThroughput)->Unit(benchmark::kMillisecond);

void
BM_MonitorScalesWithUsers(benchmark::State &state)
{
    // Per-message checking cost as concurrency rises (the paper's
    // Table 6 x-axis, as a microbenchmark).
    eval::DatasetConfig config;
    config.users = static_cast<int>(state.range(0));
    config.tasksPerUser = 20;
    config.seed = 500 + static_cast<std::uint64_t>(state.range(0));
    eval::GeneratedDataset data = eval::generateDataset(config);

    core::MonitorConfig monitor_config;
    for (auto _ : state) {
        core::WorkflowMonitor monitor(monitor_config,
                                      models().catalog,
                                      models().automataCopy());
        for (const logging::LogRecord &record : data.stream)
            benchmark::DoNotOptimize(monitor.feed(record));
        benchmark::DoNotOptimize(monitor.finish());
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * data.stream.size()));
}
BENCHMARK(BM_MonitorScalesWithUsers)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_StreamMerge(benchmark::State &state)
{
    const eval::GeneratedDataset &data = dataset();
    collect::ShippingConfig config;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            collect::mergeStream(data.stream, config));
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * data.stream.size()));
}
BENCHMARK(BM_StreamMerge)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
