/**
 * @file
 * Resilience sweep: detection quality vs. transport adversity, for
 * the unhardened and hardened ingest paths side by side. Emits one
 * JSON object per path (machine-readable degradation curves) plus a
 * short human summary.
 *
 * With --flight, both paths run with the seer-flight recorder armed
 * (per-node ring of 32 raw lines): every divergence or timeout the
 * sweep provokes freezes a forensic bundle, proving bundle capture
 * works under transport adversity. --bundles-out <path> writes the
 * hardened path's bundles as JSON lines — seer_postmortem input, and
 * the CI anomaly-bundle artifact.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_util.hpp"
#include "eval/resilience_harness.hpp"

using namespace cloudseer;

namespace {

eval::ResilienceConfig
baseConfig()
{
    eval::ResilienceConfig config;
    config.targetProblems = 10;
    config.tasksPerUserPerRun = 12;
    config.shipping = bench::checkingShipping();

    // Intensity 1.0: the ISSUE's "moderate adversity" point — ~1%
    // drop, ~1% duplication, 50 ms cross-node skew — plus a light
    // wire-fault and burst-loss tail.
    config.adversity.dropProbability = 0.01;
    config.adversity.duplicateProbability = 0.01;
    config.adversity.clockSkewMaxSeconds = 0.05;
    config.adversity.clockDriftMaxPerSecond = 0.0005;
    config.adversity.truncateProbability = 0.002;
    config.adversity.corruptProbability = 0.002;
    config.adversity.burstProbability = 0.0002;
    config.intensities = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
    return config;
}

void
printCurve(const char *label, const eval::ResilienceCurve &curve)
{
    std::printf("\n%s\n", label);
    std::printf("  %-9s %-10s %-9s %-11s %-10s %-6s\n", "intensity",
                "precision", "recall", "AD-recall", "retention",
                "shed");
    for (const eval::ResiliencePoint &point : curve.points) {
        std::printf("  %-9.2f %-10.3f %-9.3f %-11.3f %-10.3f %-6llu\n",
                    point.intensity, point.precision(), point.recall(),
                    point.abortDelayRecall(),
                    curve.recallRetention(point),
                    static_cast<unsigned long long>(point.groupsShed));
    }
    std::printf("JSON %s %s\n", label,
                eval::resilienceCurveToJson(curve).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    bool with_flight = false;
    std::string bundles_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--flight") == 0) {
            with_flight = true;
        } else if (std::strcmp(argv[i], "--bundles-out") == 0 &&
                   i + 1 < argc) {
            bundles_path = argv[++i];
            with_flight = true; // bundles require the recorder
        } else {
            std::fprintf(stderr,
                         "usage: %s [--flight] "
                         "[--bundles-out bundles.jsonl]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::printHeader("Resilience", "detection under transport adversity");
    const eval::ModeledSystem &models = bench::paperModels();

    eval::ResilienceConfig unhardened = baseConfig();
    if (with_flight) {
        unhardened.monitor.observability.flightRecorder
            .perNodeCapacity = 32;
    }
    eval::ResilienceCurve raw =
        eval::runResilienceSweep(models, unhardened);
    printCurve("unhardened", raw);

    eval::ResilienceConfig hardened = baseConfig();
    hardened.monitor.ingest = core::hardenedIngestDefaults();
    if (with_flight) {
        hardened.monitor.observability.flightRecorder
            .perNodeCapacity = 32;
    }
    eval::ResilienceCurve guarded =
        eval::runResilienceSweep(models, hardened);
    printCurve("hardened", guarded);

    if (!bundles_path.empty()) {
        std::ofstream out(bundles_path);
        std::size_t bundles = 0;
        for (const eval::ResiliencePoint &point : guarded.points) {
            out << point.forensicBundles;
            for (char c : point.forensicBundles)
                bundles += c == '\n' ? 1 : 0;
        }
        std::printf("\nwrote %zu forensic bundles to %s\n", bundles,
                    bundles_path.c_str());
    }

    return 0;
}
