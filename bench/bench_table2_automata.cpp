/**
 * @file
 * Reproduces the paper's Table 2: the eight VM tasks with the size of
 * each mined automaton (key messages and transitions) plus the number
 * of correct executions the convergence loop consumed.
 */

#include <cstdio>

#include "analysis/model_lint.hpp"
#include "common/table.hpp"
#include "core/checker/check_types.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

/** Paper Table 2 reference values (Msgs, Trans). */
struct PaperRow
{
    const char *task;
    int msgs;
    int trans;
};

const PaperRow kPaper[] = {
    {"boot", 23, 34},   {"delete", 9, 9}, {"start", 7, 7},
    {"stop", 6, 6},     {"pause", 7, 7},  {"unpause", 7, 7},
    {"suspend", 6, 6},  {"resume", 7, 7},
};

} // namespace

int
main()
{
    bench::printHeader("Table 2", "VM tasks and their mined automata");
    std::printf("Modeling each task to convergence (paper: 200-800 "
                "runs per task)...\n\n");

    const eval::ModeledSystem &models = bench::paperModels();

    common::TextTable table({"Task", "Msgs", "Trans", "Runs",
                             "Converged", "Paper Msgs", "Paper Trans"});
    for (std::size_t i = 0; i < models.perTask.size(); ++i) {
        const eval::TaskModelInfo &info = models.perTask[i];
        table.addRow({sim::taskTypeName(info.type),
                      std::to_string(info.messages),
                      std::to_string(info.transitions),
                      std::to_string(info.runsUsed),
                      info.converged ? "yes" : "no",
                      std::to_string(kPaper[i].msgs),
                      std::to_string(kPaper[i].trans)});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf(
        "Shape check: message counts match the paper exactly; the\n"
        "transition counts track the workflow DAG (the paper counts\n"
        "fork self-loop transitions as well, so its boot row is a few\n"
        "edges larger than the reduced DAG).\n");

    // Structural summary for the richest automaton.
    const core::TaskAutomaton &boot = models.automata[0];
    std::printf("\nboot automaton: %zu fork states, %zu join states, "
                "%zu initial, %zu final\n",
                boot.forkStates().size(), boot.joinStates().size(),
                boot.initialEvents().size(), boot.finalEvents().size());

    // Static verification of the freshly mined bundle: the modeling
    // pipeline must never emit an automaton seer-lint would reject.
    analysis::LintOptions lint;
    lint.maxForkFanout = core::kDefaultMaxForkFanout;
    analysis::LintReport report = analysis::lintModels(
        models.automata, *models.catalog, lint);
    std::printf("\nseer-lint over the mined bundle: %zu error(s), "
                "%zu warning(s), %zu info(s)\n",
                report.count(analysis::Severity::Error),
                report.count(analysis::Severity::Warning),
                report.count(analysis::Severity::Info));
    if (report.hasErrors()) {
        std::printf("%s\n", report.toText().c_str());
        return 1;
    }
    return 0;
}
