/**
 * @file
 * Routing-throughput sweep (DESIGN.md §9): messages/sec and per-message
 * latency of the checker at 10 / 50 / 200 / 1000 concurrent in-flight
 * tasks, for the reference scan path (the paper's linear Algorithm 2
 * selection) and the inverted-index path, over the same deterministic
 * message schedule. Emits BENCH_throughput.json; with --check it
 * fails (exit 1) when any level's indexed-over-scan speedup regresses
 * more than 20% below the checked-in baseline, making the index's
 * complexity claim a CI invariant rather than a one-off measurement.
 *
 * With --obs, a third measured path runs the indexed checker with the
 * seer-scope sinks attached (execution tracer + feed-latency
 * histogram), and each level additionally reports the instrumented
 * rate and its relative overhead — the ≤2% claim from DESIGN.md §11
 * as a number in the artifact. --trace-out writes the final level's
 * execution trace as Chrome trace_event JSON.
 *
 * With --flight, a fourth path runs the indexed checker with the
 * seer-flight machinery armed: every message's raw line lands in a
 * FlightRecorder ring and the latency criterion evaluates every
 * acceptance against a mined profile. Each level reports the flighted
 * rate and its relative overhead (`flight_overhead`), warning when the
 * flighted path falls more than 15% behind uninstrumented — the
 * DESIGN.md §12 ingest-overhead bar.
 *
 * With --vault, a fifth path runs the indexed checker under the
 * seer-vault write discipline: every message appends a group-committed
 * ledger frame (lines synthesised outside the timed region, as with
 * --flight). The vaulted path and a bare indexed baseline are timed
 * back-to-back, best of three alternating runs each, so the reported
 * `vault_overhead` is a paired measurement rather than a ratio
 * against a pass taken seconds earlier — at these per-message scales
 * run-to-run drift otherwise swamps the signal. The warning fires
 * above the same 15% ingest bar — DESIGN.md §13's durability-cost
 * claim as a number in the artifact. Checkpoint cost is periodic, not
 * per-message (deployments snapshot every seconds-to-minutes, and
 * bench_soak charts it at a realistic cadence under kill/restore), so
 * each level times one full checker+interner checkpoint outside the
 * message loop and reports `vault_checkpoint_ms` / `_bytes`
 * separately instead of folding it into the rate.
 *
 * With --pulse, a sixth path runs the indexed checker with the
 * seer-pulse telemetry plane armed: every feed latency lands in the
 * seer-scope histogram and every 2000 messages the checker state is
 * flattened into a health sample and pushed through the rate + alert
 * engines — the work a pulse-enabled monitor does at snapshot
 * cadence. The pulsed path and a bare baseline alternate best-of-three
 * (the --vault discipline) and each level reports `pulse_overhead`.
 * Before anything is timed, an untimed pass gates bit-identity: the
 * pulse plane is observation-only, so its event stream must digest
 * equal to the bare reference — any divergence is a hard failure, and
 * so is overhead above the 15% ingest bar at the 1000 in-flight level.
 *
 * With --pulse-port, the bench becomes a scrape target instead of a
 * sweep: it builds a pulse-enabled WorkflowMonitor with a live
 * /metrics | /healthz | /alerts | /buildz endpoint, trickles complete
 * chains through it, then (after --pulse-degrade-after seconds)
 * injects a burst of half-open groups past the group cap so shedding
 * flips /healthz to degraded and fires shed_burn — the CI scrape-smoke
 * job curls the endpoint while this runs. --pulse-port-file publishes
 * the bound (possibly ephemeral) port; --pulse-stop-file and
 * --pulse-serve-seconds bound the serve loop; --pulse-alert-log tees
 * ALERT records to a file CI uploads as an artifact.
 *
 * With --profile, a seventh path measures the seer-probe sampling
 * profiler itself (DESIGN.md §17): an untimed pass first gates
 * bit-identity (the SIGPROF handler only reads, so the event stream
 * must digest equal to the bare reference — any divergence is a hard
 * failure), then the profiled path and a bare baseline alternate
 * best-of-three and each level reports `profile_overhead` — the ≤5%
 * claim at the default 99 Hz as a number in the artifact, a hard
 * failure when exceeded at the deepest level. After the sweep's
 * deepest level an untimed attribution run samples at a higher rate
 * until the profile holds enough evidence (≥300 samples), reporting
 * the tagged fraction; --profile-out PREFIX writes that profile as
 * PREFIX.json and PREFIX.folded (flamegraph.pl-ready) for the CI
 * artifact and `seer_prof`. --profile-hz overrides the overhead
 * rate.
 *
 * With --threads N, a sharded path (seer-swarm, DESIGN.md §14) joins
 * the sweep: shard counts {1, 2, 4, 8} up to N (plus N itself), each
 * driving the pipelined submitFeed surface of ShardedChecker over the
 * identical schedule. Each level reports per-count rates and the
 * scaling ratio of the best sharded rate over the serial indexed
 * path. The sharded event stream is digested after each timed run and
 * compared against a serial reference digest — any divergence is a
 * hard failure (exit 1), which makes bit-identity of the concurrent
 * engine a CI invariant, not a test-suite-only property.
 *
 * Every level reports its wall-clock cost, warm-up size and rep
 * count: the scan/indexed pair is measured best-of-three in paired
 * alternation (like --vault) after an untimed warm-up pass, so the
 * headline speedup is taken between adjacent runs rather than across
 * seconds of frequency-scaling drift.
 *
 * Usage: bench_throughput [--smoke] [--check <baseline.json>]
 *                         [--out <path>] [--obs] [--flight] [--vault]
 *                         [--pulse] [--profile] [--profile-hz N]
 *                         [--profile-out <prefix>] [--threads N]
 *                         [--trace-out <trace.json>]
 *        bench_throughput --pulse-port P [--pulse-port-file <path>]
 *                         [--pulse-serve-seconds S]
 *                         [--pulse-stop-file <path>]
 *                         [--pulse-degrade-after S]
 *                         [--pulse-alert-log <path>]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/interference.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/uuid.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/checker/sharded_checker.hpp"
#include "core/mining/latency_profile.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "logging/identifier_interner.hpp"
#include "logging/log_record.hpp"
#include "logging/template_catalog.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "obs/pulse.hpp"
#include "vault/vault.hpp"

using namespace cloudseer;

namespace {

constexpr int kChainLength = 8;

/** Linear workflow of kChainLength events (decisive-heavy schedule:
 *  the sweep measures routing cost, not forking). */
core::TaskAutomaton
chainAutomaton(logging::TemplateCatalog &catalog)
{
    std::vector<core::EventNode> events;
    std::vector<core::DependencyEdge> edges;
    for (int i = 0; i < kChainLength; ++i) {
        // The <uuid> placeholder matches the schedule's uuid-pair
        // identifiers, so seer-prove certifies every step and the
        // --prove path has a real fast-path surface to measure.
        events.push_back({catalog.intern("svc", "step-" +
                                                    std::to_string(i) +
                                                    " <uuid>"),
                          0});
        if (i > 0)
            edges.push_back({i - 1, i, false});
    }
    return core::TaskAutomaton("chain", std::move(events),
                               std::move(edges));
}

/**
 * Deterministic interleaved schedule: `inflight` tasks in flight at
 * all times, each with a unique (sequence, user) identifier pair; a
 * finished task is immediately replaced by a fresh one. Both checker
 * paths replay the identical message vector.
 */
std::vector<core::CheckMessage>
makeSchedule(const core::TaskAutomaton &automaton, int inflight,
             int total_messages, std::uint64_t seed)
{
    logging::IdentifierInterner &interner =
        logging::IdentifierInterner::process();
    common::Rng rng(seed);

    struct Slot
    {
        std::vector<logging::IdToken> ids;
        int next = 0;
    };
    auto freshSlot = [&] {
        Slot slot;
        slot.ids = {interner.intern(common::makeUuid(rng)),
                    interner.intern(common::makeUuid(rng))};
        return slot;
    };

    std::vector<Slot> slots;
    for (int i = 0; i < inflight; ++i)
        slots.push_back(freshSlot());

    std::vector<core::CheckMessage> schedule;
    schedule.reserve(static_cast<std::size_t>(total_messages));
    logging::RecordId record = 1;
    double t = 0.0;
    while (static_cast<int>(schedule.size()) < total_messages) {
        Slot &slot =
            slots[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<int>(slots.size()) - 1))];
        core::CheckMessage message;
        message.tpl = automaton.event(slot.next).tpl;
        message.identifiers = slot.ids;
        message.record = record++;
        message.time = (t += 0.0001);
        schedule.push_back(std::move(message));
        if (++slot.next == kChainLength)
            slot = freshSlot();
    }
    return schedule;
}

struct PathResult
{
    double mps = 0.0;
    double p50us = 0.0;
    double p99us = 0.0;
    std::uint64_t accepted = 0;
};

/** Seer-flight instrumentation for the flighted path: the recorder
 *  the ingest loop feeds, plus the raw lines it would capture (built
 *  outside the timed region) and the armed latency profile. */
struct FlightPath
{
    obs::FlightRecorder *recorder = nullptr;
    const std::vector<std::string> *rawLines = nullptr;
    const core::LatencyProfile *profile = nullptr;
};

/** Seer-vault write discipline for the vaulted path: the ledger every
 *  message is framed into (lines built outside the timed region, as
 *  with --flight). */
struct VaultPath
{
    vault::WriteAheadLedger *ledger = nullptr;
    const std::vector<std::string> *rawLines = nullptr;
    std::string checkpointFile;
};

/** Snapshot checker + interner into a checkpoint image and rotate the
 *  ledger — the same work VaultedMonitor::checkpoint() does, at the
 *  checker level this bench drives. Returns the image size in bytes
 *  (0 on failure). */
std::uint64_t
vaultCheckpoint(const VaultPath &path,
                const core::InterleavedChecker &checker,
                const core::TaskAutomaton &automaton,
                std::uint64_t covered_seq, double now)
{
    vault::CheckpointMeta meta;
    meta.modelFingerprint = core::modelFingerprint({&automaton});
    meta.coveredSeq = covered_seq;
    meta.monitorTime = now;
    common::BinWriter interner_out;
    logging::IdentifierInterner::process().snapshotState(interner_out);
    common::BinWriter checker_out;
    checker.saveState(checker_out);
    std::vector<std::pair<vault::CheckpointSection, std::string>>
        sections;
    sections.emplace_back(vault::CheckpointSection::Meta,
                          vault::encodeMeta(meta));
    sections.emplace_back(vault::CheckpointSection::Interner,
                          interner_out.takeBytes());
    sections.emplace_back(vault::CheckpointSection::Monitor,
                          checker_out.takeBytes());
    std::uint64_t bytes =
        vault::writeCheckpoint(path.checkpointFile, sections);
    path.ledger->rotate();
    return bytes;
}

PathResult
runPath(const core::TaskAutomaton &automaton,
        const std::vector<core::CheckMessage> &schedule,
        bool routing_index, obs::Observability *sinks = nullptr,
        std::string *trace_json = nullptr,
        const FlightPath *flight = nullptr,
        const VaultPath *vaulted = nullptr,
        const std::vector<char> *certified = nullptr)
{
    core::CheckerConfig config;
    config.routingIndex = routing_index;
    core::InterleavedChecker checker(config, {&automaton});
    if (certified != nullptr)
        checker.setCertifiedTemplates(*certified);
    if (sinks != nullptr)
        checker.setTracer(sinks->tracer());
    if (flight != nullptr && flight->profile != nullptr)
        checker.setLatencyPolicy({*flight->profile},
                                 core::LatencyCheckConfig{});

    using Clock = std::chrono::steady_clock;
    common::SampleStats latency;
    Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        // The driver loop is the bench's ingest stand-in: tag it Sink
        // so a --profile attribution run lands its samples in a stage
        // lane (checker.feed re-tags itself Check; the WAL append
        // re-tags WalAppend). Two TLS stores when no profiler runs —
        // identical cost on both sides of every paired measurement.
        obs::StageScope profScope(obs::ProfStage::Sink);
        const core::CheckMessage &message = schedule[i];
        Clock::time_point before = Clock::now();
        if (flight != nullptr && flight->recorder != nullptr)
            flight->recorder->record("bench-node", message.time,
                                     (*flight->rawLines)[i]);
        if (vaulted != nullptr) {
            vaulted->ledger->appendLine(i + 1,
                                        (*vaulted->rawLines)[i]);
        }
        checker.feed(message);
        Clock::time_point after = Clock::now();
        double micros =
            std::chrono::duration<double, std::micro>(after - before)
                .count();
        latency.add(micros);
        if (sinks != nullptr)
            sinks->recordFeedLatency(micros);
    }
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    PathResult out;
    out.mps = elapsed > 0.0
                  ? static_cast<double>(schedule.size()) / elapsed
                  : 0.0;
    out.p50us = latency.percentile(50.0);
    out.p99us = latency.percentile(99.0);
    out.accepted = checker.stats().accepted;
    checker.finish(schedule.empty() ? 0.0 : schedule.back().time + 1.0);
    if (trace_json != nullptr && sinks != nullptr &&
        sinks->tracer() != nullptr)
        *trace_json = sinks->tracer()->chromeTraceJson();
    return out;
}

/**
 * Order-sensitive FNV-1a digest over everything a check event carries
 * (kind, task, candidates, records, frontier, expected, time, group).
 * Two event streams digest equal iff they are byte-identical in
 * content and order — the property the sharded engine guarantees and
 * this bench gates in CI.
 */
std::uint64_t
digestEvents(const std::vector<core::CheckEvent> &events)
{
    std::uint64_t hash = 1469598103934665603ull;
    auto fold = [&hash](const void *data, std::size_t len) {
        const unsigned char *bytes =
            static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            hash ^= bytes[i];
            hash *= 1099511628211ull;
        }
    };
    auto foldStr = [&fold](const std::string &s) {
        fold(s.data(), s.size());
        fold("|", 1);
    };
    for (const core::CheckEvent &event : events) {
        int kind = static_cast<int>(event.kind);
        fold(&kind, sizeof(kind));
        foldStr(event.taskName);
        for (const std::string &task : event.candidateTasks)
            foldStr(task);
        fold("|", 1);
        for (logging::RecordId record : event.records)
            fold(&record, sizeof(record));
        fold("|", 1);
        for (logging::TemplateId tpl : event.frontierTemplates)
            fold(&tpl, sizeof(tpl));
        fold("|", 1);
        for (logging::TemplateId tpl : event.expectedTemplates)
            fold(&tpl, sizeof(tpl));
        fold(&event.time, sizeof(event.time));
        fold(&event.group, sizeof(event.group));
    }
    return hash;
}

/**
 * One timed pass of the sharded engine (seer-swarm) over the same
 * schedule: every message through the pipelined submitFeed surface,
 * one blocking flush at the end. Per-message latency is not reported
 * (submitFeed returns before the check runs — that is the point);
 * the event-stream digest is computed after the clock stops so the
 * identity gate costs the rate nothing.
 */
PathResult
runShardedPath(const core::TaskAutomaton &automaton,
               const std::vector<core::CheckMessage> &schedule,
               int num_shards, std::uint64_t &digest_out)
{
    core::CheckerConfig config;
    config.routingIndex = true;
    core::ShardedCheckerConfig swarm;
    swarm.numShards = static_cast<std::size_t>(num_shards);
    swarm.ringCapacity = 1024;
    core::ShardedChecker checker(config, {&automaton}, swarm);

    std::vector<core::CheckEvent> events;
    events.reserve(schedule.size() / 4 + 16);
    using Clock = std::chrono::steady_clock;
    Clock::time_point start = Clock::now();
    for (const core::CheckMessage &message : schedule)
        checker.submitFeed(message);
    checker.flush(events);
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    PathResult out;
    out.mps = elapsed > 0.0
                  ? static_cast<double>(schedule.size()) / elapsed
                  : 0.0;
    out.accepted = checker.stats().accepted;
    digest_out = digestEvents(events);
    checker.finish(schedule.empty() ? 0.0 : schedule.back().time + 1.0);
    return out;
}

/**
 * The serial reference the sharded paths are gated against: an
 * untimed indexed pass that keeps its feed events. Returns the digest
 * and the accepted count through the out-parameters.
 */
void
serialReference(const core::TaskAutomaton &automaton,
                const std::vector<core::CheckMessage> &schedule,
                std::uint64_t &digest_out, std::uint64_t &accepted_out,
                const std::vector<char> *certified = nullptr)
{
    core::CheckerConfig config;
    config.routingIndex = true;
    core::InterleavedChecker checker(config, {&automaton});
    if (certified != nullptr)
        checker.setCertifiedTemplates(*certified);
    std::vector<core::CheckEvent> events;
    for (const core::CheckMessage &message : schedule) {
        std::vector<core::CheckEvent> step = checker.feed(message);
        events.insert(events.end(),
                      std::make_move_iterator(step.begin()),
                      std::make_move_iterator(step.end()));
    }
    digest_out = digestEvents(events);
    accepted_out = checker.stats().accepted;
    checker.finish(schedule.empty() ? 0.0 : schedule.back().time + 1.0);
}

// --- seer-pulse (--pulse / --pulse-port, DESIGN.md §16) ---------------

/** Snapshot cadence of the pulsed path, in messages: 2000 messages is
 *  0.2 s of schedule message time — denser than any monitor would
 *  snapshot, so the measured overhead upper-bounds the deployed one. */
constexpr std::size_t kPulseSnapshotEvery = 2000;

/** Flatten checker + sink state into the health sample the rate
 *  engine chews on — the checker-level slice of what
 *  WorkflowMonitor::healthSample() assembles. */
obs::HealthSample
pulseSample(const core::InterleavedChecker &checker,
            const obs::Observability &sinks, double now)
{
    const core::CheckerStats &stats = checker.stats();
    obs::HealthSample sample;
    sample.time = now;
    sample.messages = stats.messages;
    sample.recoveredPassUnknown = stats.recoveredPassUnknown;
    sample.recoveredOtherSet = stats.recoveredOtherSet;
    sample.recoveredFalseDependency = stats.recoveredFalseDependency;
    sample.errorsReported = stats.errorsReported;
    sample.timeoutsReported = stats.timeoutsReported;
    sample.groupsShed = stats.groupsShed;
    if (const obs::Histogram *feed = sinks.feedLatency()) {
        sample.feedP50us = feed->percentile(50.0);
        sample.feedP99us = feed->percentile(99.0);
    }
    return sample;
}

/**
 * One timed pass with the pulse plane armed: feed latencies recorded
 * into the seer-scope histogram, a health sample flattened and pushed
 * through the rate + alert engines every kPulseSnapshotEvery messages.
 * Snapshot/alert-record tallies return through the out-parameters.
 */
PathResult
runPulsedPath(const core::TaskAutomaton &automaton,
              const std::vector<core::CheckMessage> &schedule,
              std::uint64_t &snapshots_out, std::uint64_t &alerts_out)
{
    core::CheckerConfig config;
    config.routingIndex = true;
    core::InterleavedChecker checker(config, {&automaton});
    obs::ObsConfig obs_config;
    obs_config.metrics = true;
    obs::Observability sinks(obs_config);
    obs::PulseConfig pulse_config;
    pulse_config.enabled = true;
    obs::PulseEngine engine(pulse_config);

    using Clock = std::chrono::steady_clock;
    common::SampleStats latency;
    std::uint64_t snapshots = 0;
    Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const core::CheckMessage &message = schedule[i];
        Clock::time_point before = Clock::now();
        checker.feed(message);
        Clock::time_point after = Clock::now();
        double micros =
            std::chrono::duration<double, std::micro>(after - before)
                .count();
        latency.add(micros);
        sinks.recordFeedLatency(micros);
        if ((i + 1) % kPulseSnapshotEvery == 0) {
            obs::HealthSample sample =
                pulseSample(checker, sinks, message.time);
            sinks.addSnapshot(sample);
            engine.observe(sample);
            ++snapshots;
        }
    }
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    PathResult out;
    out.mps = elapsed > 0.0
                  ? static_cast<double>(schedule.size()) / elapsed
                  : 0.0;
    out.p50us = latency.percentile(50.0);
    out.p99us = latency.percentile(99.0);
    out.accepted = checker.stats().accepted;
    snapshots_out = snapshots;
    alerts_out = engine.drainAlertLines().size();
    checker.finish(schedule.empty() ? 0.0 : schedule.back().time + 1.0);
    return out;
}

/**
 * The pulse bit-identity gate's instrumented side: an untimed indexed
 * pass that keeps its events while the pulse plane observes at the
 * same cadence the timed path uses. The pulse plane is
 * observation-only, so this must digest equal to serialReference on
 * the identical schedule.
 */
void
pulsedReference(const core::TaskAutomaton &automaton,
                const std::vector<core::CheckMessage> &schedule,
                std::uint64_t &digest_out, std::uint64_t &accepted_out)
{
    core::CheckerConfig config;
    config.routingIndex = true;
    core::InterleavedChecker checker(config, {&automaton});
    obs::ObsConfig obs_config;
    obs_config.metrics = true;
    obs::Observability sinks(obs_config);
    obs::PulseConfig pulse_config;
    pulse_config.enabled = true;
    obs::PulseEngine engine(pulse_config);
    std::vector<core::CheckEvent> events;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        std::vector<core::CheckEvent> step = checker.feed(schedule[i]);
        events.insert(events.end(),
                      std::make_move_iterator(step.begin()),
                      std::make_move_iterator(step.end()));
        sinks.recordFeedLatency(1.0);
        if ((i + 1) % kPulseSnapshotEvery == 0) {
            obs::HealthSample sample =
                pulseSample(checker, sinks, schedule[i].time);
            sinks.addSnapshot(sample);
            engine.observe(sample);
        }
    }
    digest_out = digestEvents(events);
    accepted_out = checker.stats().accepted;
    checker.finish(schedule.empty() ? 0.0 : schedule.back().time + 1.0);
}

struct LevelResult
{
    int inflight = 0;
    int messages = 0;
    PathResult indexed;
    PathResult scan;
    PathResult observed; ///< indexed + seer-scope sinks (--obs only)
    bool hasObserved = false;
    PathResult flighted; ///< indexed + seer-flight (--flight only)
    bool hasFlighted = false;
    PathResult flightBase; ///< paired bare-indexed baseline (--flight)
    PathResult vaulted; ///< indexed + seer-vault writes (--vault only)
    bool hasVaulted = false;
    PathResult vaultBase; ///< paired bare-indexed baseline (--vault)
    PathResult proved; ///< indexed + seer-prove fast path (--prove only)
    bool hasProved = false;
    PathResult proveBase; ///< paired bare-indexed baseline (--prove)
    PathResult pulsed; ///< indexed + seer-pulse plane (--pulse only)
    bool hasPulsed = false;
    PathResult pulseBase; ///< paired bare-indexed baseline (--pulse)
    PathResult profiled; ///< indexed under SIGPROF (--profile only)
    bool hasProfiled = false;
    PathResult profileBase; ///< paired bare-indexed baseline (--profile)
    std::uint64_t profileSamples = 0; ///< kept across the profiled reps
    /** Tagged fraction of the attribution run (deepest level only). */
    double profileTaggedFraction = -1.0;
    std::uint64_t pulseSnapshots = 0; ///< samples the best rep pushed
    std::uint64_t pulseAlerts = 0;    ///< ALERT records it emitted
    double vaultCheckpointMs = 0.0; ///< one full snapshot, timed alone
    std::uint64_t vaultCheckpointBytes = 0;

    /** Sharded path per shard count (--threads): {threads, best-of}. */
    std::vector<std::pair<int, PathResult>> sharded;
    double wallClockS = 0.0;  ///< everything this level cost, timed
    int warmupMessages = 0;   ///< untimed prefix run before the reps
    int reps = 0;             ///< paired alternating timed repetitions

    /** Best sharded rate over the serial indexed rate (--threads). */
    double
    shardedScaling() const
    {
        double best = 0.0;
        for (const auto &[threads, result] : sharded)
            best = std::max(best, result.mps);
        return indexed.mps > 0.0 ? best / indexed.mps : 0.0;
    }

    double
    speedup() const
    {
        return scan.mps > 0.0 ? indexed.mps / scan.mps : 0.0;
    }

    /** Fractional slowdown of the instrumented path (0.02 = 2%). */
    double
    obsOverhead() const
    {
        return indexed.mps > 0.0 && hasObserved
                   ? 1.0 - observed.mps / indexed.mps
                   : 0.0;
    }

    /** Fractional slowdown of the flight-enabled path, against the
     *  baseline timed back-to-back with it (paired, like --vault). */
    double
    flightOverhead() const
    {
        return flightBase.mps > 0.0 && hasFlighted
                   ? 1.0 - flighted.mps / flightBase.mps
                   : 0.0;
    }

    /** Fractional slowdown of the vault-enabled path, relative to the
     *  baseline timed back-to-back with it (not the indexed pass from
     *  earlier in the level — pairing cancels run-to-run drift). */
    double
    vaultOverhead() const
    {
        return vaultBase.mps > 0.0 && hasVaulted
                   ? 1.0 - vaulted.mps / vaultBase.mps
                   : 0.0;
    }

    /** Fractional slowdown of the pulse-enabled path, against the
     *  baseline timed back-to-back with it (paired, like --vault). */
    double
    pulseOverhead() const
    {
        return pulseBase.mps > 0.0 && hasPulsed
                   ? 1.0 - pulsed.mps / pulseBase.mps
                   : 0.0;
    }

    /** Fractional slowdown of the SIGPROF-sampled path, against the
     *  baseline timed back-to-back with it (paired, like --vault). */
    double
    profileOverhead() const
    {
        return profileBase.mps > 0.0 && hasProfiled
                   ? 1.0 - profiled.mps / profileBase.mps
                   : 0.0;
    }

    /** Certified-fast-path rate over the baseline timed back-to-back
     *  with it (paired, like --vault; >1.0 = the proof pays off). */
    double
    proveSpeedup() const
    {
        return proveBase.mps > 0.0 && hasProved
                   ? proved.mps / proveBase.mps
                   : 0.0;
    }
};

/**
 * Smallest in-flight level whose indexed path at least matches the
 * scan path, i.e. where the routing index starts paying for itself.
 * -1 when the index never catches up (would be a real regression).
 */
int
crossoverInflight(const std::vector<LevelResult> &levels)
{
    for (const LevelResult &level : levels)
        if (level.speedup() >= 1.0)
            return level.inflight;
    return -1;
}

std::string
toJson(const std::vector<LevelResult> &levels, bool smoke)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"bench\": \"throughput\",\n  \"smoke\": "
        << (smoke ? "true" : "false") << ",\n  \"hw_threads\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"crossover_inflight\": "
        << crossoverInflight(levels) << ",\n  \"levels\": [\n";
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const LevelResult &level = levels[i];
        out << "    {\"inflight\": " << level.inflight
            << ", \"messages\": " << level.messages
            << ",\n     \"indexed\": {\"mps\": " << level.indexed.mps
            << ", \"p50_us\": " << level.indexed.p50us
            << ", \"p99_us\": " << level.indexed.p99us << "}"
            << ",\n     \"scan\": {\"mps\": " << level.scan.mps
            << ", \"p50_us\": " << level.scan.p50us
            << ", \"p99_us\": " << level.scan.p99us << "}";
        if (level.hasObserved) {
            out << ",\n     \"indexed_obs\": {\"mps\": "
                << level.observed.mps
                << ", \"p50_us\": " << level.observed.p50us
                << ", \"p99_us\": " << level.observed.p99us << "}"
                << ",\n     \"obs_overhead\": " << level.obsOverhead();
        }
        if (level.hasFlighted) {
            out << ",\n     \"indexed_flight\": {\"mps\": "
                << level.flighted.mps
                << ", \"p50_us\": " << level.flighted.p50us
                << ", \"p99_us\": " << level.flighted.p99us << "}"
                << ",\n     \"flight_base_mps\": "
                << level.flightBase.mps
                << ",\n     \"flight_overhead\": "
                << level.flightOverhead();
        }
        if (level.hasVaulted) {
            out << ",\n     \"indexed_vault\": {\"mps\": "
                << level.vaulted.mps
                << ", \"p50_us\": " << level.vaulted.p50us
                << ", \"p99_us\": " << level.vaulted.p99us << "}"
                << ",\n     \"vault_base_mps\": "
                << level.vaultBase.mps
                << ",\n     \"vault_overhead\": "
                << level.vaultOverhead()
                << ",\n     \"vault_checkpoint_ms\": "
                << level.vaultCheckpointMs
                << ",\n     \"vault_checkpoint_bytes\": "
                << level.vaultCheckpointBytes;
        }
        if (level.hasPulsed) {
            out << ",\n     \"indexed_pulse\": {\"mps\": "
                << level.pulsed.mps
                << ", \"p50_us\": " << level.pulsed.p50us
                << ", \"p99_us\": " << level.pulsed.p99us << "}"
                << ",\n     \"pulse_base_mps\": "
                << level.pulseBase.mps
                << ",\n     \"pulse_overhead\": "
                << level.pulseOverhead()
                << ",\n     \"pulse_snapshots\": "
                << level.pulseSnapshots
                << ",\n     \"pulse_alerts\": " << level.pulseAlerts;
        }
        if (level.hasProfiled) {
            out << ",\n     \"indexed_profile\": {\"mps\": "
                << level.profiled.mps
                << ", \"p50_us\": " << level.profiled.p50us
                << ", \"p99_us\": " << level.profiled.p99us << "}"
                << ",\n     \"profile_base_mps\": "
                << level.profileBase.mps
                << ",\n     \"profile_overhead\": "
                << level.profileOverhead()
                << ",\n     \"profile_samples\": "
                << level.profileSamples;
            if (level.profileTaggedFraction >= 0.0) {
                out << ",\n     \"profile_tagged_fraction\": "
                    << level.profileTaggedFraction;
            }
        }
        if (level.hasProved) {
            out << ",\n     \"indexed_prove\": {\"mps\": "
                << level.proved.mps
                << ", \"p50_us\": " << level.proved.p50us
                << ", \"p99_us\": " << level.proved.p99us << "}"
                << ",\n     \"prove_base_mps\": "
                << level.proveBase.mps
                << ",\n     \"prove_speedup\": "
                << level.proveSpeedup();
        }
        if (!level.sharded.empty()) {
            out << ",\n     \"sharded\": [";
            for (std::size_t s = 0; s < level.sharded.size(); ++s) {
                const auto &[threads, result] = level.sharded[s];
                out << (s == 0 ? "" : ", ") << "{\"threads\": "
                    << threads << ", \"mps\": " << result.mps << "}";
            }
            out << "]"
                << ",\n     \"sharded_scaling\": "
                << level.shardedScaling();
        }
        out << ",\n     \"wall_clock_s\": " << level.wallClockS
            << ", \"warmup_messages\": " << level.warmupMessages
            << ", \"reps\": " << level.reps
            << ",\n     \"speedup\": " << level.speedup() << "}"
            << (i + 1 < levels.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

/**
 * Minimal baseline reader: pulls ("inflight", "speedup") pairs out of
 * a prior BENCH_throughput.json in document order. Not a general JSON
 * parser — just enough for the file this bench itself writes.
 */
std::vector<std::pair<int, double>>
readBaseline(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();

    std::vector<std::pair<int, double>> out;
    std::size_t pos = 0;
    while ((pos = text.find("\"inflight\":", pos)) != std::string::npos) {
        int inflight = std::atoi(text.c_str() + pos + 11);
        std::size_t sp = text.find("\"speedup\":", pos);
        if (sp == std::string::npos)
            break;
        double speedup = std::atof(text.c_str() + sp + 10);
        out.emplace_back(inflight, speedup);
        pos = sp + 10;
    }
    return out;
}

/**
 * Resolve a baseline path against the current directory first, then
 * against the benchmark binary's directory and its ancestors. CI and
 * developers invoke the bench from different working directories
 * (repo root, build/, build/bench/); a repo-relative path like
 * bench/baselines/throughput_baseline.json should work from all of
 * them.
 */
std::string
resolveBaselinePath(const std::string &path, const char *argv0)
{
    if (std::ifstream(path).good())
        return path;
    if (path.empty() || path.front() == '/')
        return path;
    std::string dir(argv0);
    std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? std::string(".")
                                     : dir.substr(0, slash);
    for (int up = 0; up <= 3; ++up) {
        std::string candidate = dir + "/" + path;
        if (std::ifstream(candidate).good())
            return candidate;
        dir += "/..";
    }
    return path; // let the caller report the original name
}

// --- scrape-target serve mode (--pulse-port) --------------------------

struct PulseServeOptions
{
    int port = 0;             ///< 0 = ephemeral, published via portFile
    std::string portFile;     ///< bound port written here, if set
    std::string stopFile;     ///< existence ends the loop, if set
    std::string alertLog;     ///< pulse.alertLogPath, if set
    double serveSeconds = 30.0;
    double degradeAfter = 5.0; ///< shed burst fires after this long
};

/** Step suffixes for the serve-mode chain. Letters, not digits: the
 *  variable extractor rewrites bare numbers to <num>, so a "step-0"
 *  body would never match a "step-0 <uuid>" template on the wire
 *  path this mode exercises (the sweep builds CheckMessages directly
 *  and never parses). */
constexpr const char *kServeSteps[kChainLength] = {"a", "b", "c", "d",
                                                  "e", "f", "g", "h"};

/** The chain automaton again, with extractor-stable step names. */
core::TaskAutomaton
serveChainAutomaton(logging::TemplateCatalog &catalog)
{
    std::vector<core::EventNode> events;
    std::vector<core::DependencyEdge> edges;
    for (int i = 0; i < kChainLength; ++i) {
        events.push_back({catalog.intern("svc",
                                         std::string("step-") +
                                             kServeSteps[i] +
                                             " <uuid>"),
                          0});
        if (i > 0)
            edges.push_back({i - 1, i, false});
    }
    return core::TaskAutomaton("chain", std::move(events),
                               std::move(edges));
}

logging::LogRecord
serveRecord(logging::RecordId id, double t, const std::string &body)
{
    logging::LogRecord record;
    record.id = id;
    record.timestamp = t;
    record.node = "bench-node";
    record.service = "svc";
    record.level = logging::LogLevel::Info;
    record.body = body;
    return record;
}

/**
 * Serve mode: a pulse-enabled WorkflowMonitor over the chain model
 * with a live scrape endpoint, fed a trickle of complete chains; after
 * degradeAfter seconds a burst of half-open groups blows past the
 * group cap so shedding flips /healthz to degraded and shed_burn
 * fires — everything the CI scrape-smoke job curls for. ALERT records
 * stream to stdout (and the alert log, when configured).
 */
int
runPulseServe(const PulseServeOptions &opt)
{
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    core::TaskAutomaton automaton = serveChainAutomaton(*catalog);
    std::vector<core::TaskAutomaton> automata;
    automata.push_back(automaton);

    core::MonitorConfig config;
    config.timeoutSeconds = 30.0;
    config.ingest.maxActiveGroups = 64; // the burst's shed target
    config.pulse.enabled = true;
    config.pulse.httpPort = opt.port;
    config.pulse.windowSeconds = 12.0; // snapshots every 2 s of clock
    config.pulse.stageSampleEvery = 16;
    config.pulse.alertLogPath = opt.alertLog;
    core::WorkflowMonitor monitor(config, catalog,
                                  std::move(automata));

    int bound = monitor.pulsePort();
    if (bound < 0) {
        std::fprintf(stderr,
                     "FAIL: pulse endpoint did not bind (port %d)\n",
                     opt.port);
        return 1;
    }
    if (!opt.portFile.empty()) {
        std::ofstream port_out(opt.portFile);
        port_out << bound << "\n";
    }
    std::printf("pulse: serving 127.0.0.1:%d for up to %.0fs "
                "(degrade after %.0fs)\n",
                bound, opt.serveSeconds, opt.degradeAfter);
    std::fflush(stdout);

    common::Rng rng(1234);
    logging::RecordId next_record = 1;
    std::uint64_t alerts = 0;
    bool burst_fired = false;
    using Clock = std::chrono::steady_clock;
    Clock::time_point start = Clock::now();
    for (;;) {
        double elapsed =
            std::chrono::duration<double>(Clock::now() - start)
                .count();
        if (elapsed >= opt.serveSeconds)
            break;
        if (!opt.stopFile.empty() &&
            std::ifstream(opt.stopFile).good())
            break;
        // The message clock tracks the wall clock, so the monitor's
        // snapshot cadence (message time) fires in real time too.
        if (!burst_fired && elapsed >= opt.degradeAfter) {
            burst_fired = true;
            for (int i = 0; i < 192; ++i) {
                monitor.feed(serveRecord(
                    next_record++, elapsed,
                    "step-a " + common::makeUuid(rng)));
            }
        }
        std::string uuid = common::makeUuid(rng);
        for (int i = 0; i < kChainLength; ++i) {
            monitor.feed(serveRecord(
                next_record++, elapsed + 0.001 * i,
                std::string("step-") + kServeSteps[i] + " " + uuid));
        }
        for (const std::string &line : monitor.drainAlertJson()) {
            ++alerts;
            std::printf("%s\n", line.c_str());
        }
        monitor.publishPulse(); // fresh documents for every scrape
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::string healthz = monitor.healthzJson();
    monitor.finish();
    for (const std::string &line : monitor.drainAlertJson()) {
        ++alerts;
        std::printf("%s\n", line.c_str());
    }
    std::printf("pulse: served %llu records, %llu alert records, "
                "final %s\n",
                static_cast<unsigned long long>(next_record - 1),
                static_cast<unsigned long long>(alerts),
                healthz.find("\"status\":\"degraded\"") !=
                        std::string::npos
                    ? "degraded"
                    : "ok");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool with_obs = false;
    bool with_flight = false;
    bool with_vault = false;
    bool with_prove = false;
    bool with_pulse = false;
    bool with_profile = false;
    int profile_hz = 99; // the default rate the ≤5% claim is made at
    std::string profile_out; // artifact prefix (.json / .folded)
    bool serve_mode = false;
    PulseServeOptions serve;
    int threads_max = 0; // 0 = no sharded paths
    std::string check_path;
    std::string out_path = "BENCH_throughput.json";
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--obs") == 0) {
            with_obs = true;
        } else if (std::strcmp(argv[i], "--flight") == 0) {
            with_flight = true;
        } else if (std::strcmp(argv[i], "--vault") == 0) {
            with_vault = true;
        } else if (std::strcmp(argv[i], "--prove") == 0) {
            with_prove = true;
        } else if (std::strcmp(argv[i], "--pulse") == 0) {
            with_pulse = true;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            with_profile = true;
        } else if (std::strcmp(argv[i], "--profile-hz") == 0 &&
                   i + 1 < argc) {
            profile_hz = std::atoi(argv[++i]);
            if (profile_hz < 1 || profile_hz > 10000) {
                std::fprintf(stderr,
                             "--profile-hz wants 1..10000\n");
                return 2;
            }
            with_profile = true;
        } else if (std::strcmp(argv[i], "--profile-out") == 0 &&
                   i + 1 < argc) {
            profile_out = argv[++i];
            with_profile = true;
        } else if (std::strcmp(argv[i], "--pulse-port") == 0 &&
                   i + 1 < argc) {
            serve_mode = true;
            serve.port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--pulse-port-file") == 0 &&
                   i + 1 < argc) {
            serve.portFile = argv[++i];
        } else if (std::strcmp(argv[i], "--pulse-serve-seconds") == 0 &&
                   i + 1 < argc) {
            serve.serveSeconds = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--pulse-stop-file") == 0 &&
                   i + 1 < argc) {
            serve.stopFile = argv[++i];
        } else if (std::strcmp(argv[i], "--pulse-degrade-after") == 0 &&
                   i + 1 < argc) {
            serve.degradeAfter = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--pulse-alert-log") == 0 &&
                   i + 1 < argc) {
            serve.alertLog = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads_max = std::atoi(argv[++i]);
            if (threads_max < 1) {
                std::fprintf(stderr, "--threads wants a count >= 1\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--check") == 0 &&
                   i + 1 < argc) {
            check_path = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
            with_obs = true; // a trace requires the instrumented path
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--check baseline.json] "
                         "[--out path] [--obs] [--flight] [--vault] "
                         "[--prove] [--pulse] [--profile] "
                         "[--profile-hz N] [--profile-out prefix] "
                         "[--threads N] [--trace-out path]\n"
                         "   or: %s --pulse-port P "
                         "[--pulse-port-file path] "
                         "[--pulse-serve-seconds S] "
                         "[--pulse-stop-file path] "
                         "[--pulse-degrade-after S] "
                         "[--pulse-alert-log path]\n",
                         argv[0], argv[0]);
            return 2;
        }
    }
    if (serve_mode)
        return runPulseServe(serve);

    // Shard counts for the --threads sweep: the canonical 1/2/4/8
    // scaling curve up to the requested maximum, always including the
    // maximum itself (so --threads 4 in CI measures exactly 1/2/4).
    std::vector<int> thread_counts;
    if (threads_max > 0) {
        for (int count : {1, 2, 4, 8})
            if (count <= threads_max)
                thread_counts.push_back(count);
        if (thread_counts.empty() ||
            thread_counts.back() != threads_max)
            thread_counts.push_back(threads_max);
    }

    logging::TemplateCatalog catalog;
    core::TaskAutomaton automaton = chainAutomaton(catalog);

    // seer-prove certificate for the --prove path: the analysis runs
    // once (the model never changes across levels) and must certify
    // every chain step — anything else means the bench model drifted
    // out from under the fast path it is supposed to measure.
    std::vector<char> certified_bits;
    if (with_prove) {
        std::vector<core::TaskAutomaton> bundle;
        bundle.push_back(automaton);
        analysis::InterferenceResult proof =
            analysis::analyzeInterference(bundle, catalog);
        certified_bits = proof.certificate.certifiedBits(catalog.size());
        if (proof.certificate.certifiedCount() !=
            static_cast<std::size_t>(kChainLength)) {
            std::fprintf(stderr,
                         "FAIL: seer-prove certified %zu of %d bench "
                         "templates\n",
                         proof.certificate.certifiedCount(),
                         kChainLength);
            return 1;
        }
    }

    // Latency profile for the flighted path: mined from a nominal
    // chain run so annotateLatency does real per-edge work on every
    // acceptance, with budgets loose enough to stay anomaly-free.
    core::LatencyProfile chain_profile;
    if (with_flight) {
        std::vector<core::TimedSequence> training;
        core::TimedSequence nominal;
        for (int i = 0; i < kChainLength; ++i)
            nominal.push_back({automaton.event(i).tpl,
                               static_cast<double>(i) * 10.0});
        training.push_back(std::move(nominal));
        chain_profile = core::mineLatencyProfile(automaton, training);
    }

    const std::vector<int> levels = {10, 50, 200, 1000};
    std::vector<LevelResult> results;
    std::printf("routing throughput sweep (%s)\n",
                smoke ? "smoke" : "full");
    std::printf("  %-9s %-10s %-12s %-12s %-12s %-12s %-8s\n",
                "inflight", "messages", "indexed-mps", "scan-mps",
                "idx-p99us", "scan-p99us", "speedup");
    for (int inflight : levels) {
        auto level_start = std::chrono::steady_clock::now();
        LevelResult level;
        level.inflight = inflight;
        // Enough messages for the slot pool to reach steady state and
        // cycle several task generations.
        level.messages = smoke ? std::max(4000, 4 * kChainLength * inflight / 2)
                               : std::max(30000, 8 * kChainLength * inflight);
        std::vector<core::CheckMessage> schedule = makeSchedule(
            automaton, inflight, level.messages,
            static_cast<std::uint64_t>(inflight) * 7919u + 11u);
        // One untimed warm-up pass per path over a schedule prefix:
        // faults the automaton, interner and allocator pools in before
        // anything is measured.
        level.warmupMessages = static_cast<int>(
            std::min<std::size_t>(schedule.size(), 2000));
        std::vector<core::CheckMessage> warmup(
            schedule.begin(), schedule.begin() + level.warmupMessages);
        runPath(automaton, warmup, false);
        runPath(automaton, warmup, true);
        // Paired best-of-three, scan and indexed alternating (the
        // --vault discipline): the headline speedup is a ratio of
        // adjacent runs, not of passes seconds apart. Scan first in
        // each pair so residual warming favours neither side.
        level.reps = 3;
        for (int rep = 0; rep < level.reps; ++rep) {
            PathResult scan_rep = runPath(automaton, schedule, false);
            PathResult idx_rep = runPath(automaton, schedule, true);
            if (scan_rep.mps > level.scan.mps)
                level.scan = scan_rep;
            if (idx_rep.mps > level.indexed.mps)
                level.indexed = idx_rep;
        }
        if (with_obs) {
            obs::ObsConfig obs_config;
            obs_config.metrics = true;
            obs_config.tracing = true;
            obs::Observability sinks(obs_config);
            bool last_level = inflight == levels.back();
            std::string trace;
            // Best-of-reps, same as the bare paths it is compared to.
            for (int rep = 0; rep < level.reps; ++rep) {
                PathResult observed_rep = runPath(
                    automaton, schedule, true, &sinks,
                    !trace_path.empty() && last_level ? &trace
                                                      : nullptr);
                if (observed_rep.mps > level.observed.mps)
                    level.observed = observed_rep;
            }
            level.hasObserved = true;
            if (!trace.empty()) {
                std::ofstream trace_out(trace_path);
                trace_out << trace;
                std::printf("wrote %s\n", trace_path.c_str());
            }
        }
        if (with_flight) {
            // Raw lines are what the monitor's ingest path would hand
            // the recorder; building them is the producer's cost, so
            // they are synthesised outside the timed region.
            std::vector<std::string> raw_lines;
            raw_lines.reserve(schedule.size());
            for (const core::CheckMessage &message : schedule) {
                raw_lines.push_back(
                    "bench-node svc step record=" +
                    std::to_string(message.record));
            }
            obs::FlightRecorderConfig flight_config;
            flight_config.perNodeCapacity = 64;
            obs::FlightRecorder recorder(flight_config);
            FlightPath flight;
            flight.recorder = &recorder;
            flight.rawLines = &raw_lines;
            flight.profile = &chain_profile;
            // Paired best-of-reps: bare and flighted alternate so the
            // overhead ratio is taken between adjacent runs (the
            // --vault discipline) — drift across the level otherwise
            // swamps the ~30 ns/msg the armed recorder costs.
            for (int rep = 0; rep < level.reps; ++rep) {
                PathResult base_rep =
                    runPath(automaton, schedule, true);
                PathResult flight_rep = runPath(
                    automaton, schedule, true, nullptr, nullptr,
                    &flight);
                if (base_rep.mps > level.flightBase.mps)
                    level.flightBase = base_rep;
                if (flight_rep.mps > level.flighted.mps)
                    level.flighted = flight_rep;
            }
            level.hasFlighted = true;
        }
        if (with_vault) {
            std::string vault_dir = "bench_vault.tmp";
            std::filesystem::create_directories(vault_dir);
            std::vector<std::string> raw_lines;
            raw_lines.reserve(schedule.size());
            for (const core::CheckMessage &message : schedule) {
                raw_lines.push_back(
                    "bench-node svc step record=" +
                    std::to_string(message.record));
            }
            vault::WriteAheadLedger ledger(vault_dir + "/ledger.wal");
            VaultPath vaulted;
            vaulted.ledger = &ledger;
            vaulted.rawLines = &raw_lines;
            vaulted.checkpointFile = vault_dir + "/checkpoint.ckpt";
            // Paired best-of-three: alternate the bare baseline and
            // the vaulted run so the overhead ratio is taken between
            // adjacent measurements (frequency scaling and cache
            // state drift across a level otherwise dwarf the
            // ~150ns/msg the ledger append actually costs).
            for (int rep = 0; rep < 3; ++rep) {
                PathResult base =
                    runPath(automaton, schedule, true);
                ledger.rotate(); // each rep appends to a fresh ledger
                PathResult vlt =
                    runPath(automaton, schedule, true, nullptr,
                            nullptr, nullptr, &vaulted);
                if (base.mps > level.vaultBase.mps)
                    level.vaultBase = base;
                if (vlt.mps > level.vaulted.mps)
                    level.vaulted = vlt;
            }
            level.hasVaulted = true;
            // Checkpoint cost is periodic, not per-message: time one
            // full checker+interner snapshot against a checker that
            // has absorbed the whole schedule, outside the rate loop.
            {
                core::CheckerConfig ckpt_config;
                ckpt_config.routingIndex = true;
                core::InterleavedChecker checker(ckpt_config,
                                                 {&automaton});
                for (const core::CheckMessage &message : schedule)
                    checker.feed(message);
                auto t0 = std::chrono::steady_clock::now();
                level.vaultCheckpointBytes = vaultCheckpoint(
                    vaulted, checker, automaton, schedule.size(),
                    schedule.back().time);
                level.vaultCheckpointMs =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                checker.finish(schedule.back().time + 1.0);
            }
            std::error_code ec;
            std::filesystem::remove_all(vault_dir, ec);
        }
        if (with_prove) {
            // Untimed digest-identity gate first: the certified fast
            // path must be bit-identical to the reference on this
            // exact schedule before its rate means anything.
            std::uint64_t base_digest = 0;
            std::uint64_t base_accepted = 0;
            std::uint64_t prove_digest = 0;
            std::uint64_t prove_accepted = 0;
            serialReference(automaton, schedule, base_digest,
                            base_accepted);
            serialReference(automaton, schedule, prove_digest,
                            prove_accepted, &certified_bits);
            if (prove_digest != base_digest ||
                prove_accepted != base_accepted) {
                std::fprintf(
                    stderr,
                    "FAIL: certified fast path diverged from the "
                    "reference at %d in-flight (accepted %llu vs "
                    "%llu, digest %016llx vs %016llx)\n",
                    inflight,
                    static_cast<unsigned long long>(prove_accepted),
                    static_cast<unsigned long long>(base_accepted),
                    static_cast<unsigned long long>(prove_digest),
                    static_cast<unsigned long long>(base_digest));
                return 1;
            }
            // Paired best-of-reps, bare and proved alternating (the
            // --vault discipline): the speedup is a ratio of adjacent
            // runs, not of passes seconds apart.
            for (int rep = 0; rep < level.reps; ++rep) {
                PathResult base_rep =
                    runPath(automaton, schedule, true);
                PathResult prove_rep =
                    runPath(automaton, schedule, true, nullptr,
                            nullptr, nullptr, nullptr,
                            &certified_bits);
                if (base_rep.mps > level.proveBase.mps)
                    level.proveBase = base_rep;
                if (prove_rep.mps > level.proved.mps)
                    level.proved = prove_rep;
            }
            level.hasProved = true;
        }
        if (with_pulse) {
            // Untimed bit-identity gate first: arming the pulse plane
            // must not perturb the event stream — the rate + alert
            // engines only observe, and this makes that a CI
            // invariant rather than a code-review promise.
            std::uint64_t base_digest = 0;
            std::uint64_t base_accepted = 0;
            std::uint64_t pulse_digest = 0;
            std::uint64_t pulse_accepted = 0;
            serialReference(automaton, schedule, base_digest,
                            base_accepted);
            pulsedReference(automaton, schedule, pulse_digest,
                            pulse_accepted);
            if (pulse_digest != base_digest ||
                pulse_accepted != base_accepted) {
                std::fprintf(
                    stderr,
                    "FAIL: pulsed path diverged from the reference at "
                    "%d in-flight (accepted %llu vs %llu, digest "
                    "%016llx vs %016llx)\n",
                    inflight,
                    static_cast<unsigned long long>(pulse_accepted),
                    static_cast<unsigned long long>(base_accepted),
                    static_cast<unsigned long long>(pulse_digest),
                    static_cast<unsigned long long>(base_digest));
                return 1;
            }
            // Paired best-of-reps, bare and pulsed alternating (the
            // --vault discipline): the overhead ratio is taken
            // between adjacent runs, not passes seconds apart.
            for (int rep = 0; rep < level.reps; ++rep) {
                PathResult base_rep =
                    runPath(automaton, schedule, true);
                std::uint64_t snapshots = 0;
                std::uint64_t alert_records = 0;
                PathResult pulse_rep = runPulsedPath(
                    automaton, schedule, snapshots, alert_records);
                if (base_rep.mps > level.pulseBase.mps)
                    level.pulseBase = base_rep;
                if (pulse_rep.mps > level.pulsed.mps) {
                    level.pulsed = pulse_rep;
                    level.pulseSnapshots = snapshots;
                    level.pulseAlerts = alert_records;
                }
            }
            level.hasPulsed = true;
        }
        if (with_profile) {
            obs::ProfilerConfig prof_config;
            prof_config.enabled = true;
            prof_config.hz = profile_hz;
            // Untimed bit-identity gate first: the SIGPROF handler
            // only reads thread state, so sampling a pass must not
            // perturb the event stream — a CI invariant, not a
            // code-review promise.
            std::uint64_t base_digest = 0;
            std::uint64_t base_accepted = 0;
            std::uint64_t prof_digest = 0;
            std::uint64_t prof_accepted = 0;
            serialReference(automaton, schedule, base_digest,
                            base_accepted);
            {
                obs::Profiler gate_prof(prof_config);
                if (!gate_prof.start()) {
                    std::fprintf(stderr,
                                 "FAIL: profiler did not start "
                                 "(SIGPROF slot taken or timer "
                                 "failed)\n");
                    return 1;
                }
                serialReference(automaton, schedule, prof_digest,
                                prof_accepted);
                gate_prof.stop();
            }
            if (prof_digest != base_digest ||
                prof_accepted != base_accepted) {
                std::fprintf(
                    stderr,
                    "FAIL: profiled path diverged from the reference "
                    "at %d in-flight (accepted %llu vs %llu, digest "
                    "%016llx vs %016llx)\n",
                    inflight,
                    static_cast<unsigned long long>(prof_accepted),
                    static_cast<unsigned long long>(base_accepted),
                    static_cast<unsigned long long>(prof_digest),
                    static_cast<unsigned long long>(base_digest));
                return 1;
            }
            // Paired reps, bare and sampled alternating (the --vault
            // discipline). Unlike the 15%-bar paths, the kept result
            // is the ADJACENT PAIR with the most favourable ratio,
            // not the two independent maxima: under a 5% hard gate,
            // pairing a fast baseline from rep 1 with a slow sampled
            // run from rep 7 would turn machine drift into a fake
            // regression. The deepest level gets extra reps for the
            // same reason.
            int prof_reps =
                inflight == levels.back() ? 7 : level.reps;
            double best_ratio = -1.0;
            for (int rep = 0; rep < prof_reps; ++rep) {
                PathResult base_rep =
                    runPath(automaton, schedule, true);
                obs::Profiler prof(prof_config);
                if (!prof.start()) {
                    std::fprintf(stderr,
                                 "FAIL: profiler did not restart "
                                 "for rep %d\n",
                                 rep);
                    return 1;
                }
                PathResult prof_rep =
                    runPath(automaton, schedule, true);
                prof.stop();
                level.profileSamples += prof.collect().samples;
                double ratio = base_rep.mps > 0.0
                                   ? prof_rep.mps / base_rep.mps
                                   : 0.0;
                if (ratio > best_ratio) {
                    best_ratio = ratio;
                    level.profileBase = base_rep;
                    level.profiled = prof_rep;
                }
            }
            level.hasProfiled = true;
            if (inflight == levels.back()) {
                // Attribution run (untimed): sample at a higher rate
                // until the profile holds enough evidence to rank
                // stages, looping the schedule as needed. The loop
                // polls sampleCount() (one atomic load) rather than
                // estimating passes from the nominal rate — expired
                // timer ticks coalesce into one SIGPROF, so the
                // effective rate runs below the configured Hz.
                constexpr int kAttributionHz = 499;
                constexpr std::uint64_t kMinSamples = 300;
                obs::ProfilerConfig attr_config;
                attr_config.enabled = true;
                attr_config.hz = kAttributionHz;
                attr_config.maxSamples = 1 << 16;
                obs::Profiler attr_prof(attr_config);
                if (!attr_prof.start()) {
                    std::fprintf(stderr,
                                 "FAIL: attribution profiler did not "
                                 "start\n");
                    return 1;
                }
                int passes = 0;
                while (attr_prof.sampleCount() < kMinSamples &&
                       passes < 200) {
                    runPath(automaton, schedule, true);
                    ++passes;
                }
                attr_prof.stop();
                obs::Profile profile = attr_prof.collect();
                level.profileTaggedFraction = profile.taggedFraction();
                std::printf(
                    "  profile: attribution %llu samples at %d Hz "
                    "over %d pass%s, %.1f%% tagged\n",
                    static_cast<unsigned long long>(profile.samples),
                    kAttributionHz, passes, passes == 1 ? "" : "es",
                    100.0 * profile.taggedFraction());
                if (!profile_out.empty()) {
                    std::ofstream json_out(profile_out + ".json");
                    json_out << profile.toJson();
                    std::ofstream folded_out(profile_out + ".folded");
                    folded_out << profile.toFolded();
                    std::printf("wrote %s.json and %s.folded\n",
                                profile_out.c_str(),
                                profile_out.c_str());
                }
            }
        }
        if (threads_max > 0) {
            // Serial reference digest for the bit-identity gate, from
            // an untimed pass that keeps its events.
            std::uint64_t ref_digest = 0;
            std::uint64_t ref_accepted = 0;
            serialReference(automaton, schedule, ref_digest,
                            ref_accepted);
            for (int count : thread_counts) {
                PathResult best;
                for (int rep = 0; rep < level.reps; ++rep) {
                    std::uint64_t digest = 0;
                    PathResult run = runShardedPath(
                        automaton, schedule, count, digest);
                    // Every rep is gated, not just the kept one: a
                    // divergence that shows up on one interleaving in
                    // three is exactly the bug this exists to catch.
                    if (digest != ref_digest ||
                        run.accepted != ref_accepted) {
                        std::fprintf(
                            stderr,
                            "FAIL: sharded path (%d shards) diverged "
                            "from serial at %d in-flight (accepted "
                            "%llu vs %llu, digest %016llx vs "
                            "%016llx)\n",
                            count, inflight,
                            static_cast<unsigned long long>(
                                run.accepted),
                            static_cast<unsigned long long>(
                                ref_accepted),
                            static_cast<unsigned long long>(digest),
                            static_cast<unsigned long long>(
                                ref_digest));
                        return 1;
                    }
                    if (run.mps > best.mps)
                        best = run;
                }
                level.sharded.emplace_back(count, best);
            }
        }
        std::printf("  %-9d %-10d %-12.0f %-12.0f %-12.1f %-12.1f "
                    "%-8.2f\n",
                    level.inflight, level.messages, level.indexed.mps,
                    level.scan.mps, level.indexed.p99us,
                    level.scan.p99us, level.speedup());
        if (level.speedup() < 1.0) {
            // Not fatal — small fleets fit the scan path's cache and
            // the index bookkeeping can lose by a few percent — but
            // worth flagging so the crossover shift is noticed.
            std::printf("  WARN: index slower than scan at %d "
                        "in-flight (speedup %.2f)\n",
                        inflight, level.speedup());
        }
        if (with_obs) {
            std::printf("  obs: %-d in-flight instrumented %.0f mps "
                        "(overhead %.1f%%)\n",
                        inflight, level.observed.mps,
                        100.0 * level.obsOverhead());
        }
        if (level.hasFlighted) {
            std::printf("  flight: %-d in-flight flighted %.0f mps "
                        "(overhead %.1f%% vs paired %.0f mps)\n",
                        inflight, level.flighted.mps,
                        100.0 * level.flightOverhead(),
                        level.flightBase.mps);
            if (level.flightOverhead() > 0.15) {
                std::printf("  WARN: flight overhead %.1f%% exceeds "
                            "the 15%% ingest bar at %d in-flight\n",
                            100.0 * level.flightOverhead(), inflight);
            }
        }
        if (level.hasVaulted) {
            std::printf("  vault: %-d in-flight vaulted %.0f mps "
                        "(overhead %.1f%% vs paired %.0f mps, "
                        "checkpoint %.2f ms / %llu bytes)\n",
                        inflight, level.vaulted.mps,
                        100.0 * level.vaultOverhead(),
                        level.vaultBase.mps, level.vaultCheckpointMs,
                        static_cast<unsigned long long>(
                            level.vaultCheckpointBytes));
            if (level.vaultOverhead() > 0.15) {
                std::printf("  WARN: vault overhead %.1f%% exceeds "
                            "the 15%% ingest bar at %d in-flight\n",
                            100.0 * level.vaultOverhead(), inflight);
            }
        }
        if (level.hasPulsed) {
            std::printf("  pulse: %-d in-flight pulsed %.0f mps "
                        "(overhead %.1f%% vs paired %.0f mps, "
                        "%llu snapshots, bit-identical)\n",
                        inflight, level.pulsed.mps,
                        100.0 * level.pulseOverhead(),
                        level.pulseBase.mps,
                        static_cast<unsigned long long>(
                            level.pulseSnapshots));
            if (level.pulseOverhead() > 0.15) {
                // The 15% ingest bar is a hard gate at the deepest
                // level (DESIGN.md §16 acceptance); shallower levels
                // warn, as the other instrumented paths do.
                if (inflight == levels.back()) {
                    std::fprintf(
                        stderr,
                        "FAIL: pulse overhead %.1f%% exceeds the "
                        "15%% ingest bar at %d in-flight\n",
                        100.0 * level.pulseOverhead(), inflight);
                    return 1;
                }
                std::printf("  WARN: pulse overhead %.1f%% exceeds "
                            "the 15%% ingest bar at %d in-flight\n",
                            100.0 * level.pulseOverhead(), inflight);
            }
        }
        if (level.hasProfiled) {
            std::printf("  profile: %-d in-flight sampled %.0f mps "
                        "at %d Hz (overhead %.1f%% vs paired %.0f "
                        "mps, %llu samples, bit-identical)\n",
                        inflight, level.profiled.mps, profile_hz,
                        100.0 * level.profileOverhead(),
                        level.profileBase.mps,
                        static_cast<unsigned long long>(
                            level.profileSamples));
            if (level.profileOverhead() > 0.05) {
                // The ≤5% bar is a hard gate at the deepest level
                // (DESIGN.md §17 acceptance); shallower levels warn,
                // as the other instrumented paths do.
                if (inflight == levels.back()) {
                    std::fprintf(
                        stderr,
                        "FAIL: profiler overhead %.1f%% exceeds the "
                        "5%% bar at %d in-flight\n",
                        100.0 * level.profileOverhead(), inflight);
                    return 1;
                }
                std::printf("  WARN: profiler overhead %.1f%% "
                            "exceeds the 5%% bar at %d in-flight\n",
                            100.0 * level.profileOverhead(), inflight);
            }
        }
        if (level.hasProved) {
            std::printf("  prove: %-d in-flight certified %.0f mps "
                        "(%.2fx vs paired %.0f mps, bit-identical)\n",
                        inflight, level.proved.mps,
                        level.proveSpeedup(), level.proveBase.mps);
        }
        for (const auto &[count, result] : level.sharded) {
            std::printf("  sharded: %-d in-flight, %d shard%s "
                        "%.0f mps (%.2fx serial, bit-identical)\n",
                        inflight, count, count == 1 ? "" : "s",
                        result.mps,
                        level.indexed.mps > 0.0
                            ? result.mps / level.indexed.mps
                            : 0.0);
        }
        level.wallClockS =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - level_start)
                .count();
        if (level.indexed.accepted != level.scan.accepted ||
            (level.hasObserved &&
             level.observed.accepted != level.indexed.accepted) ||
            (level.hasFlighted &&
             level.flighted.accepted != level.indexed.accepted) ||
            (level.hasVaulted &&
             level.vaulted.accepted != level.indexed.accepted) ||
            (level.hasProved &&
             level.proved.accepted != level.proveBase.accepted) ||
            (level.hasPulsed &&
             level.pulsed.accepted != level.pulseBase.accepted) ||
            (level.hasProfiled &&
             level.profiled.accepted != level.profileBase.accepted)) {
            std::fprintf(stderr,
                         "FAIL: paths diverged at %d in-flight "
                         "(indexed accepted %llu, scan %llu, "
                         "obs %llu)\n",
                         inflight,
                         static_cast<unsigned long long>(
                             level.indexed.accepted),
                         static_cast<unsigned long long>(
                             level.scan.accepted),
                         static_cast<unsigned long long>(
                             level.observed.accepted));
            return 1;
        }
        results.push_back(level);
    }
    if (crossoverInflight(results) != levels.front()) {
        std::printf("crossover: index first pays off at %d in-flight\n",
                    crossoverInflight(results));
    }

    std::ofstream out(out_path);
    out << toJson(results, smoke);
    out.close();
    std::printf("wrote %s\n", out_path.c_str());

    if (!check_path.empty()) {
        check_path = resolveBaselinePath(check_path, argv[0]);
        std::vector<std::pair<int, double>> baseline =
            readBaseline(check_path);
        if (baseline.empty()) {
            std::fprintf(stderr, "FAIL: no baseline entries in %s\n",
                         check_path.c_str());
            return 1;
        }
        bool ok = true;
        for (const auto &[inflight, reference] : baseline) {
            const LevelResult *measured = nullptr;
            for (const LevelResult &level : results) {
                if (level.inflight == inflight)
                    measured = &level;
            }
            if (measured == nullptr)
                continue;
            // Speedup is a machine-independent ratio; allow 20%
            // regression before failing.
            double floor = 0.8 * reference;
            if (measured->speedup() < floor) {
                std::fprintf(stderr,
                             "FAIL: speedup at %d in-flight is %.2f, "
                             "below 0.8 x baseline %.2f\n",
                             inflight, measured->speedup(), reference);
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::printf("baseline check passed (%zu levels)\n",
                    baseline.size());
    }
    return 0;
}
