/**
 * @file
 * Reproduces the paper's Table 7: problem-detection capability with
 * faults injected at the six Table 4 execution points (10 triggered
 * problems per point, 4 concurrent users, 10 s timeout).
 */

#include <cstdio>

#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "eval/detection_harness.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

/** Paper Table 7 reference (Detected, F/P, F/N). */
struct PaperRow
{
    int detected;
    int fp;
    int fn;
};

const PaperRow kPaper[] = {
    {9, 0, 1},  // AMQP-Sender
    {10, 1, 0}, // AMQP-Receiver
    {10, 3, 1}, // Image-Create
    {8, 3, 2},  // Image-Delete
    {10, 3, 0}, // WSGI-Client
    {8, 1, 2},  // WSGI-Server
};

} // namespace

int
main()
{
    bench::printHeader("Table 7", "problem-detection results");
    const eval::ModeledSystem &models = bench::paperModels();

    core::MonitorConfig monitor;
    monitor.timeoutSeconds = 10.0; // paper §5.3

    common::TextTable table({"Injection Point", "Tasks", "D", "A", "S",
                             "Detected", "F/P", "F/N",
                             "Paper (Det/FP/FN)"});

    common::DetectionStats totals;
    int by_error = 0;
    int by_timeout = 0;
    int with_error_message = 0;
    int total_problems = 0;

    for (std::size_t i = 0; i < sim::kAllInjectionPoints.size(); ++i) {
        eval::DetectionConfig config;
        config.point = sim::kAllInjectionPoints[i];
        config.targetProblems = 10;
        config.usersPerRun = 4;
        config.tasksPerUserPerRun = 20;
        config.triggerProbability = 0.25;
        config.seed = 1000 + static_cast<std::uint64_t>(i);
        config.shipping = bench::checkingShipping();

        eval::DetectionResult result =
            eval::runDetectionExperiment(models, config, monitor);
        totals.merge(result.asStats());
        by_error += result.detectedByError;
        by_timeout += result.detectedByTimeout;
        with_error_message += result.problemsWithErrorMessage;
        total_problems += result.delayProblems + result.abortProblems +
                          result.silentProblems;

        const PaperRow &paper = kPaper[i];
        table.addRow(
            {injectionPointName(config.point),
             std::to_string(result.tasksRun),
             std::to_string(result.delayProblems),
             std::to_string(result.abortProblems),
             std::to_string(result.silentProblems),
             std::to_string(result.detected),
             std::to_string(result.falsePositives),
             std::to_string(result.falseNegatives),
             std::to_string(paper.detected) + "/" +
                 std::to_string(paper.fp) + "/" +
                 std::to_string(paper.fn)});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("Injected problems: %d (%d with an error message; "
                "paper: 60 with 17)\n",
                total_problems, with_error_message);
    std::printf("Detected by error-message criterion: %d "
                "(paper: 16)\n", by_error);
    std::printf("Detected by timeout criterion:       %d "
                "(paper: 38)\n", by_timeout);
    std::printf("Precision: %s (paper: 83.08%%)\n",
                common::formatPercent(totals.precision()).c_str());
    std::printf("Recall:    %s (paper: 90.00%%)\n",
                common::formatPercent(totals.recall()).c_str());
    return 0;
}
