/**
 * @file
 * Ablation bench for the design choices called out in DESIGN.md §6:
 * identifier-set routing, the least-difference tie break, equivalent-
 * group deduplication, false-dependency removal, and lineage-based
 * timeout suppression. Each variant runs the same two representative
 * workloads (group 3: 4 users distinct UIDs; group 6: 4 users single
 * UID) and reports accuracy, throughput, decisive fraction, and the
 * group probes per message (the brute-force cost the identifier
 * heuristic exists to avoid, paper §5.5).
 */

#include <cstdio>

#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

struct Variant
{
    const char *name;
    core::CheckerConfig config;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;
    out.push_back({"full (paper)", {}});

    core::CheckerConfig no_routing;
    no_routing.identifierRouting = false;
    out.push_back({"no identifier routing (brute force)", no_routing});

    core::CheckerConfig no_tiebreak;
    no_tiebreak.tieBreakLeastDifference = false;
    out.push_back({"no least-difference tie break", no_tiebreak});

    core::CheckerConfig no_dedup;
    no_dedup.equivalentGroupDedup = false;
    out.push_back({"no equivalent-group dedup", no_dedup});

    core::CheckerConfig no_repair;
    no_repair.falseDependencyRemoval = false;
    out.push_back({"no false-dependency removal", no_repair});

    core::CheckerConfig no_suppress;
    no_suppress.timeoutSuppression = false;
    out.push_back({"no timeout suppression", no_suppress});
    return out;
}

} // namespace

int
main()
{
    bench::printHeader("Ablations",
                       "checker heuristics on groups 3 and 6 workloads");
    const eval::ModeledSystem &models = bench::paperModels();

    const eval::ExperimentGroup group3 = {3, 4, false, 4, 80};
    const eval::ExperimentGroup group6 = {6, 4, true, 4, 80};

    for (const eval::ExperimentGroup &group : {group3, group6}) {
        std::printf("\nWorkload: %d users, %s identifiers, "
                    "%d datasets x %d tasks\n",
                    group.users,
                    group.singleUid ? "shared" : "distinct",
                    group.datasets, group.users * group.tasksPerUser);
        common::TextTable table({"Variant", "Accuracy", "us/msg",
                                 "% Decisive", "Probes/msg",
                                 "Timeout FPs"});
        for (const Variant &variant : variants()) {
            core::MonitorConfig monitor;
            monitor.timeoutSeconds = 10.0;
            monitor.checker = variant.config;

            common::SampleStats accuracy, per_msg, decisive, probes;
            std::uint64_t timeout_reports = 0;
            for (int d = 0; d < group.datasets; ++d) {
                eval::DatasetResult result = eval::runDataset(
                    models, bench::datasetFor(group, d), monitor);
                accuracy.add(result.accuracy);
                per_msg.add(result.secondsPer1k * 1e3); // us per msg
                decisive.add(result.stats.decisiveFraction());
                probes.add(
                    static_cast<double>(result.stats.consumeAttempts) /
                    static_cast<double>(result.stats.messages));
                // No faults are injected: every timeout is a FP.
                timeout_reports += result.stats.timeoutsReported;
            }
            table.addRow({variant.name,
                          common::formatPercent(accuracy.mean()),
                          common::formatDouble(per_msg.mean(), 2),
                          common::formatPercent(decisive.mean()),
                          common::formatDouble(probes.mean(), 2),
                          std::to_string(timeout_reports)});
        }
        std::printf("%s", table.toString().c_str());
    }

    std::printf(
        "\nReadings: brute force multiplies group probes per message;\n"
        "disabling false-dependency removal hurts accuracy when the\n"
        "shipper reorders; disabling timeout suppression turns stale\n"
        "hypothesis groups into spurious problem reports.\n");
    return 0;
}
