/**
 * @file
 * Reproduces the paper's Table 6: checking efficiency (average
 * messages, total checking time, time per 1k messages, and the
 * fraction of decisive checking) over the Table 3 groups.
 */

#include <cstdio>

#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

/** Paper Table 6 reference (Ave. 1k, % Decisive). */
struct PaperRow
{
    const char *per1k;
    const char *decisive;
};

const PaperRow kPaper[] = {
    {"1.81s", "83.13%"}, {"2.09s", "80.76%"}, {"2.33s", "78.18%"},
    {"2.00s", "80.12%"}, {"2.47s", "75.48%"}, {"3.03s", "71.43%"},
};

} // namespace

int
main()
{
    bench::printHeader("Table 6", "experiment results for efficiency");
    const eval::ModeledSystem &models = bench::paperModels();
    core::MonitorConfig monitor;
    monitor.timeoutSeconds = 10.0;

    common::TextTable table({"Grp.", "Ave. Msgs", "Ave. Time",
                             "Ave. 1k", "% Decisive", "Paper 1k",
                             "Paper Decisive"});

    for (const eval::ExperimentGroup &group : eval::table3Groups()) {
        common::SampleStats messages, seconds, per1k, decisive;
        for (int d = 0; d < group.datasets; ++d) {
            eval::DatasetResult result = eval::runDataset(
                models, bench::datasetFor(group, d), monitor);
            messages.add(static_cast<double>(result.totalMessages));
            seconds.add(result.checkSeconds);
            per1k.add(result.secondsPer1k);
            decisive.add(result.stats.decisiveFraction());
        }
        table.addRow({std::to_string(group.group),
                      std::to_string(
                          static_cast<long>(messages.mean())),
                      common::formatDouble(seconds.mean(), 4) + "s",
                      common::formatDouble(per1k.mean() * 1000.0, 3) +
                          "ms",
                      common::formatPercent(decisive.mean()),
                      kPaper[group.group - 1].per1k,
                      kPaper[group.group - 1].decisive});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "Absolute times are far below the paper's 1.81-3.03 s/1k (a\n"
        "research prototype on a live cluster vs. native C++ on a\n"
        "synthetic stream). The shape claims hold: throughput tracks\n"
        "the decisive-checking fraction, which falls as concurrency\n"
        "rises (groups 1->3, 4->6) and as identifier diversity drops\n"
        "(multi-UID groups 1-3 vs single-UID groups 4-6).\n");
    return 0;
}
