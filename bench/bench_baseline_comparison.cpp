/**
 * @file
 * Baseline comparison: CloudSeer (online workflow checking) vs an
 * offline window-statistics anomaly detector, over identical
 * fault-injected streams.
 *
 * This regenerates the paper's §6 argument quantitatively: offline
 * approaches (Fu'09 / Lou'10 / Xu'09 family) must wait for the
 * complete log — their detection latency is the remaining stream
 * length — and a window-level alarm carries no workflow context,
 * while CloudSeer reports within one timeout and names the task and
 * the step.
 */

#include <cstdio>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "eval/detection_harness.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

int
main()
{
    bench::printHeader("Baseline",
                       "CloudSeer vs offline window statistics");
    const eval::ModeledSystem &models = bench::paperModels();
    core::MonitorConfig monitor;
    monitor.timeoutSeconds = 10.0;

    common::TextTable table({"Injection Point", "Method", "Precision",
                             "Recall", "Mean latency (s)",
                             "Workflow context"});

    common::DetectionStats seer_total;
    common::DetectionStats base_total;
    common::SampleStats seer_latency;
    common::SampleStats base_latency;

    for (std::size_t i = 0; i < sim::kAllInjectionPoints.size(); ++i) {
        eval::DetectionConfig config;
        config.point = sim::kAllInjectionPoints[i];
        config.targetProblems = 8;
        config.seed = 9000 + static_cast<std::uint64_t>(i);
        config.shipping = bench::checkingShipping();

        eval::DetectionResult seer =
            eval::runDetectionExperiment(models, config, monitor);
        eval::BaselineResult offline = eval::runOfflineBaseline(config);

        common::DetectionStats seer_stats = seer.asStats();
        seer_total.merge(seer_stats);
        base_total.merge(offline.stats);
        if (seer.detectionLatency.count() > 0)
            seer_latency.add(seer.detectionLatency.mean());
        if (offline.detectionLatency.count() > 0)
            base_latency.add(offline.detectionLatency.mean());

        table.addRow({injectionPointName(config.point), "CloudSeer",
                      common::formatPercent(seer_stats.precision()),
                      common::formatPercent(seer_stats.recall()),
                      common::formatDouble(
                          seer.detectionLatency.mean(), 2),
                      "task + step"});
        table.addRow({"", "offline-window",
                      common::formatPercent(offline.stats.precision()),
                      common::formatPercent(offline.stats.recall()),
                      common::formatDouble(
                          offline.detectionLatency.mean(), 2),
                      "10s window only"});
    }
    std::printf("%s\n", table.toString().c_str());

    std::printf("Totals — CloudSeer: precision %s recall %s, mean "
                "latency %.2fs\n",
                common::formatPercent(seer_total.precision()).c_str(),
                common::formatPercent(seer_total.recall()).c_str(),
                seer_latency.mean());
    std::printf("Totals — offline baseline: precision %s recall %s, "
                "mean latency %.2fs (must wait for the full log)\n",
                common::formatPercent(base_total.precision()).c_str(),
                common::formatPercent(base_total.recall()).c_str(),
                base_latency.mean());
    return 0;
}
