/**
 * @file
 * Long-horizon soak harness for seer-vault (DESIGN.md §13).
 *
 * Drives a vaulted monitor through a compressed diurnal traffic
 * pattern — epochs of varying load, each a fresh fault-injected
 * workload shipped through the perturbed wire path — while a
 * reference monitor (same config, never killed) consumes the
 * identical inputs in lockstep. Periodically the vaulted monitor is
 * killed without warning (destroyed mid-epoch, torn bytes appended to
 * its ledger as a crash would leave) and reconstructed from disk; the
 * soak then asserts the restore-fidelity contract at three points:
 *
 *  1. replay: recovery's replayed reports equal the reference's
 *     reports for the same ledger-seq range;
 *  2. resend: inputs lost to ledger truncation (the collector's
 *     retransmit path) reproduce the reference's reports;
 *  3. lockstep: every subsequent input — and the final finish() —
 *     yields byte-identical reportToJson output on both monitors.
 *
 * Any mismatch is a hard failure (exit 1): this is the CI gate that
 * "restore = same verdicts" stays true as the checker evolves.
 *
 * Along the way it charts RSS (VmRSS), memory-ceiling evictions,
 * interner cap rejections, checkpoint latency/size, and ledger size
 * per epoch into BENCH_soak.json. The monitor runs with a hard
 * memory ceiling, so a flat RSS line with nonzero evictions is the
 * bounded-memory claim as data.
 *
 * Usage: bench_soak [--smoke] [--out <path>] [--dir <vault-dir>]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "collect/stream_merger.hpp"
#include "collect/stream_perturber.hpp"
#include "common/rng.hpp"
#include "core/monitor/report_json.hpp"
#include "eval/modeling_harness.hpp"
#include "sim/simulation.hpp"
#include "vault/vaulted_monitor.hpp"
#include "workload/workload_generator.hpp"

using namespace cloudseer;

namespace {

/** One input as fed, kept so truncation-lost inputs can be resent. */
struct SavedInput
{
    bool isLine = false;
    logging::LogRecord record;
    std::string line;
};

/** Per-epoch chart row. */
struct EpochRow
{
    int epoch = 0;
    double loadFactor = 0.0;
    std::size_t inputs = 0;
    std::uint64_t rssKb = 0;
    std::size_t activeGroups = 0;
    std::uint64_t memoryEvictions = 0;  ///< cumulative
    std::uint64_t capRejected = 0;      ///< cumulative
    std::uint64_t checkpoints = 0;      ///< cumulative
    double checkpointMs = 0.0;          ///< explicit end-of-epoch one
    std::uint64_t checkpointBytes = 0;
    std::uint64_t walPeakBytes = 0;
    bool killed = false;
    std::uint64_t replayed = 0;
    std::uint64_t resent = 0;
};

std::uint64_t
readRssKb()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("VmRSS:", 0) == 0)
            return std::strtoull(line.c_str() + 6, nullptr, 10);
    }
    return 0;
}

/** Concatenated reportToJson lines for one input's reports. */
std::string
renderReports(const std::vector<core::MonitorReport> &reports,
              const logging::TemplateCatalog &catalog)
{
    std::string out;
    for (const core::MonitorReport &report : reports) {
        out += core::reportToJson(report, catalog);
        out += '\n';
    }
    return out;
}

std::string
toJson(const std::vector<EpochRow> &rows, bool smoke,
       std::size_t total_inputs, int kills, int fidelity_failures,
       std::uint64_t max_rss_kb)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"bench\": \"soak\",\n  \"smoke\": "
        << (smoke ? "true" : "false") << ",\n  \"epochs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const EpochRow &row = rows[i];
        out << "    {\"epoch\": " << row.epoch
            << ", \"load\": " << row.loadFactor
            << ", \"inputs\": " << row.inputs
            << ", \"rss_kb\": " << row.rssKb
            << ", \"active_groups\": " << row.activeGroups
            << ", \"memory_evictions\": " << row.memoryEvictions
            << ", \"interner_cap_rejected\": " << row.capRejected
            << ", \"checkpoints\": " << row.checkpoints
            << ", \"checkpoint_ms\": " << row.checkpointMs
            << ", \"checkpoint_bytes\": " << row.checkpointBytes
            << ", \"wal_peak_bytes\": " << row.walPeakBytes
            << ", \"killed\": " << (row.killed ? "true" : "false")
            << ", \"replayed\": " << row.replayed
            << ", \"resent\": " << row.resent << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    std::uint64_t evictions =
        rows.empty() ? 0 : rows.back().memoryEvictions;
    std::uint64_t rejected = rows.empty() ? 0 : rows.back().capRejected;
    out << "  ],\n  \"summary\": {\"inputs\": " << total_inputs
        << ", \"kills\": " << kills
        << ", \"fidelity_failures\": " << fidelity_failures
        << ", \"max_rss_kb\": " << max_rss_kb
        << ", \"memory_evictions\": " << evictions
        << ", \"interner_cap_rejected\": " << rejected << "}\n}\n";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_soak.json";
    std::string vault_dir = "soak_vault.tmp";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
            vault_dir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out path] "
                         "[--dir vault-dir]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("seer-vault soak (%s)\n", smoke ? "smoke" : "full");

    // Offline models: the paper-scale convergence loop is overkill for
    // a durability soak; a short modeling pass yields the same eight
    // automata shapes in a fraction of the time (matters under ASan).
    eval::ModelingConfig modeling;
    modeling.minRuns = smoke ? 40 : 80;
    modeling.checkEvery = 10;
    modeling.stableChecks = 3;
    modeling.maxRuns = smoke ? 120 : 300;
    eval::ModeledSystem models = eval::buildModels(modeling);

    // Monitor config: memory ceiling on, interner capped — the soak
    // is exactly the scenario those guards exist for. Both monitors
    // share it, so eviction decisions stay lockstep.
    core::MonitorConfig monitor_config;
    monitor_config.ingest.maxResidentBytes = smoke ? 6 * 1024
                                                   : 16 * 1024;
    monitor_config.ingest.memoryCheckInterval = 16;
    monitor_config.ingest.maxInternerEntries = smoke ? 256 : 2048;

    vault::VaultConfig vault_config;
    vault_config.directory = vault_dir;
    vault_config.checkpointEveryRecords = smoke ? 500 : 2000;

    std::error_code ec;
    std::filesystem::remove_all(vault_dir, ec);

    auto vaulted = std::make_unique<vault::VaultedMonitor>(
        vault_config, monitor_config, models.catalog,
        models.automataCopy());
    core::WorkflowMonitor reference(monitor_config, models.catalog,
                                    models.automataCopy());
    const logging::TemplateCatalog &catalog = *models.catalog;

    // refJsonBySeq[s] = the reference's rendered reports for input
    // seq s (1-based); savedInputs[s] = the input itself, for the
    // retransmit path after ledger truncation.
    std::vector<std::string> refJsonBySeq = {""};
    std::vector<SavedInput> savedInputs = {SavedInput{}};

    const int epochs = smoke ? 6 : 36;
    const int kill_every = 2; ///< kill mid-epoch on every 2nd epoch
    common::Rng killRng(0x50a6ULL);
    std::vector<EpochRow> rows;
    int kills = 0;
    int fidelity_failures = 0;
    std::uint64_t max_rss_kb = 0;
    double clock_offset = 0.0;

    auto fidelityFail = [&fidelity_failures](const char *where,
                                             std::uint64_t seq) {
        std::fprintf(stderr,
                     "FAIL: fidelity mismatch (%s) at seq %llu\n",
                     where,
                     static_cast<unsigned long long>(seq));
        ++fidelity_failures;
    };

    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Compressed diurnal curve: one "day" every 12 epochs, load
        // swinging between ~10% and 100% of the base fleet.
        double phase = 2.0 * 3.14159265358979 *
                       static_cast<double>(epoch) / 12.0;
        double load = 0.55 + 0.45 * std::sin(phase);
        std::uint64_t epoch_seed =
            0x5eedULL + static_cast<std::uint64_t>(epoch) * 7919;

        sim::SimConfig sim_config;
        sim::Simulation simulation(sim_config, epoch_seed);
        workload::WorkloadConfig wl;
        wl.users = std::max(
            1, static_cast<int>(std::lround((smoke ? 4 : 8) * load)));
        wl.tasksPerUser = smoke ? 6 : 12;
        wl.singleUid = false;
        wl.seed = epoch_seed ^ 0x3141ULL;
        workload::WorkloadGenerator generator(wl);
        generator.submitAll(simulation);
        simulation.run();

        collect::ShippingConfig shipping;
        shipping.tailProbability = 0.005;
        shipping.tailMin = 0.05;
        shipping.tailMax = 0.4;
        shipping.seed = epoch_seed ^ 0x5a1cULL;
        std::vector<logging::LogRecord> stream =
            collect::mergeStream(simulation.records(), shipping);

        // Stitch epochs into one continuous timeline so groups from
        // a previous epoch age out naturally instead of being
        // clobbered by a clock jump back to zero.
        double epoch_end = clock_offset;
        for (logging::LogRecord &record : stream) {
            record.timestamp += clock_offset;
            epoch_end = std::max(epoch_end, record.timestamp);
        }
        clock_offset = epoch_end + 30.0;

        // Mild transport adversity on the wire path, every epoch.
        collect::PerturbationConfig adversity;
        adversity.dropProbability = 0.002;
        adversity.duplicateProbability = 0.002;
        adversity.truncateProbability = 0.001;
        adversity.corruptProbability = 0.001;
        adversity.clockSkewMaxSeconds = 0.02;
        adversity.seed = epoch_seed ^ 0xadd5ULL;
        collect::PerturbedStream wire =
            collect::StreamPerturber(adversity).apply(stream);

        EpochRow row;
        row.epoch = epoch;
        row.loadFactor = load;
        row.inputs = wire.lines.size();
        row.killed = (epoch % kill_every) == 1;
        std::size_t kill_at =
            row.killed ? wire.lines.size() / 2 +
                             static_cast<std::size_t>(killRng.uniformInt(
                                 0, static_cast<int>(
                                        wire.lines.size() / 4)))
                       : wire.lines.size() + 1;

        for (std::size_t i = 0; i < wire.lines.size(); ++i) {
            // Decode outside the monitor so a surviving line carries
            // its record id (same convention as the resilience
            // harness); undecodable lines exercise the quarantine.
            SavedInput input;
            std::optional<logging::LogRecord> decoded =
                logging::decodeLogLine(wire.lines[i]);
            if (decoded) {
                decoded->id = wire.records[i].id;
                input.record = *decoded;
            } else {
                input.isLine = true;
                input.line = wire.lines[i];
            }

            std::string ref_json = renderReports(
                input.isLine ? reference.feedLine(input.line)
                             : reference.feed(input.record),
                catalog);
            std::string vault_json = renderReports(
                input.isLine ? vaulted->feedLine(input.line)
                             : vaulted->feed(input.record),
                catalog);
            savedInputs.push_back(input);
            refJsonBySeq.push_back(std::move(ref_json));
            std::uint64_t seq = savedInputs.size() - 1;
            if (vault_json != refJsonBySeq.back())
                fidelityFail("lockstep", seq);
            row.walPeakBytes =
                std::max(row.walPeakBytes, vaulted->stats().walBytes);

            if (i + 1 == kill_at) {
                // Kill: destroy without a final checkpoint (per-append
                // flush makes this equivalent to SIGKILL), leave a
                // torn frame on the ledger as a crash mid-append
                // would, and on odd kills also rip off complete tail
                // bytes so some inputs are genuinely lost and must be
                // retransmitted.
                ++kills;
                vaulted.reset();
                std::string wal = vault::ledgerPath(vault_dir);
                bool lose_tail = kills % 2 == 0;
                if (lose_tail) {
                    auto size = std::filesystem::file_size(wal, ec);
                    if (!ec && size > 40) {
                        std::filesystem::resize_file(
                            wal,
                            size - static_cast<std::uintmax_t>(
                                       killRng.uniformInt(20, 39)),
                            ec);
                    }
                }
                std::ofstream torn(wal, std::ios::binary |
                                            std::ios::app);
                torn << "\x07torn";
                torn.close();

                vaulted = std::make_unique<vault::VaultedMonitor>(
                    vault_config, monitor_config, models.catalog,
                    models.automataCopy());
                const vault::RecoverResult &rec = vaulted->recovery();
                row.replayed += rec.replayedInputs;

                // Gate 1: replayed reports == reference reports over
                // the replayed seq range.
                std::string expect;
                for (std::uint64_t s = rec.checkpointSeq + 1;
                     s <= rec.lastReplayedSeq; ++s)
                    expect += refJsonBySeq[s];
                if (renderReports(rec.replayReports, catalog) !=
                    expect)
                    fidelityFail("replay", rec.lastReplayedSeq);

                // Gate 2: retransmit inputs the torn tail lost (the
                // collector's ack cursor would still hold them) and
                // demand the reference's reports back.
                for (std::uint64_t s = rec.lastReplayedSeq + 1;
                     s <= seq; ++s) {
                    const SavedInput &lost = savedInputs[s];
                    std::string json = renderReports(
                        lost.isLine ? vaulted->feedLine(lost.line)
                                    : vaulted->feed(lost.record),
                        catalog);
                    ++row.resent;
                    if (json != refJsonBySeq[s])
                        fidelityFail("resend", s);
                }
            }
        }

        // Explicit end-of-epoch checkpoint, timed: the latency an
        // operator pays for an on-demand snapshot at this state size.
        auto t0 = std::chrono::steady_clock::now();
        vaulted->checkpoint();
        row.checkpointMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();

        const core::IngestStats &ingest =
            vaulted->monitor().ingestStats();
        const logging::InternerStats interner =
            logging::IdentifierInterner::process().stats();
        row.rssKb = readRssKb();
        row.activeGroups = vaulted->monitor().activeGroups();
        row.memoryEvictions = ingest.memoryEvictions;
        row.capRejected = interner.capRejected;
        row.checkpoints = vaulted->stats().checkpointsTaken;
        row.checkpointBytes = vaulted->stats().lastCheckpointBytes;
        max_rss_kb = std::max(max_rss_kb, row.rssKb);
        rows.push_back(row);
        std::printf("  epoch %2d load %.2f inputs %5zu rss %6llu kB "
                    "groups %4zu evict %4llu ckpt %.1f ms%s\n",
                    row.epoch, row.loadFactor, row.inputs,
                    static_cast<unsigned long long>(row.rssKb),
                    row.activeGroups,
                    static_cast<unsigned long long>(
                        row.memoryEvictions),
                    row.checkpointMs, row.killed ? "  [killed]" : "");
    }

    // Gate 3: end-of-stream flushes must agree too.
    std::string ref_final = renderReports(reference.finish(), catalog);
    std::string vault_final =
        renderReports(vaulted->finish(), catalog);
    if (ref_final != vault_final)
        fidelityFail("finish", savedInputs.size() - 1);

    std::ofstream out(out_path);
    out << toJson(rows, smoke, savedInputs.size() - 1, kills,
                  fidelity_failures, max_rss_kb);
    out.close();
    std::printf("wrote %s\n", out_path.c_str());
    std::printf("%d kills, %d fidelity failure(s), peak RSS %llu kB\n",
                kills, fidelity_failures,
                static_cast<unsigned long long>(max_rss_kb));

    // The vault directory is left in place deliberately: the final
    // checkpoint + ledger are the run's durable snapshot (CI uploads
    // them as an artifact, and seer_vault can autopsy them). The next
    // run cleans it at startup.
    return fidelity_failures == 0 ? 0 : 1;
}
