/**
 * @file
 * Extension experiment: timeout-value sensitivity.
 *
 * The paper fixes the timeout at 10 s and leaves choosing it to
 * future work (§4). This bench sweeps the global timeout over the
 * detection experiment (all six injection points pooled) and adds a
 * final row using the learned per-task policy from TimeoutEstimator:
 * short timeouts detect fast but misfire on slow-but-healthy tasks;
 * long ones are quiet but slow; the per-task policy gets both.
 */

#include <cstdio>

#include "common/string_util.hpp"
#include "common/table.hpp"
#include "eval/detection_harness.hpp"
#include "eval/timeout_learning.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

/** Pool detection over all six injection points for one monitor. */
eval::DetectionResult
pooledDetection(const eval::ModeledSystem &models,
                const core::MonitorConfig &monitor)
{
    eval::DetectionResult pooled;
    for (std::size_t i = 0; i < sim::kAllInjectionPoints.size(); ++i) {
        eval::DetectionConfig config;
        config.point = sim::kAllInjectionPoints[i];
        config.targetProblems = 6;
        config.seed = 3000 + static_cast<std::uint64_t>(i);
        config.shipping = bench::checkingShipping();
        eval::DetectionResult result =
            eval::runDetectionExperiment(models, config, monitor);
        pooled.tasksRun += result.tasksRun;
        pooled.delayProblems += result.delayProblems;
        pooled.abortProblems += result.abortProblems;
        pooled.silentProblems += result.silentProblems;
        pooled.detected += result.detected;
        pooled.falsePositives += result.falsePositives;
        pooled.falseNegatives += result.falseNegatives;
        pooled.detectedByError += result.detectedByError;
        pooled.detectedByTimeout += result.detectedByTimeout;
        // Pool per-point mean latencies (point sample counts are
        // equal by construction, so the mean of means is unbiased).
        if (result.detectionLatency.count() > 0) {
            pooled.detectionLatency.add(result.detectionLatency.mean());
        }
    }
    return pooled;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Extension", "timeout sensitivity and the learned policy");
    const eval::ModeledSystem &models = bench::paperModels();

    common::TextTable table({"Timeout", "Detected", "F/P", "F/N",
                             "Precision", "Recall",
                             "Mean latency (s)"});

    for (double timeout : {3.0, 5.0, 10.0, 20.0, 40.0}) {
        core::MonitorConfig monitor;
        monitor.timeoutSeconds = timeout;
        eval::DetectionResult result = pooledDetection(models, monitor);
        common::DetectionStats stats = result.asStats();
        table.addRow({common::formatDouble(timeout, 0) + "s (global)",
                      std::to_string(result.detected),
                      std::to_string(result.falsePositives),
                      std::to_string(result.falseNegatives),
                      common::formatPercent(stats.precision()),
                      common::formatPercent(stats.recall()),
                      common::formatDouble(
                          result.detectionLatency.mean(), 2)});
    }

    // Learned per-task policy.
    core::TimeoutPolicy policy =
        eval::learnTimeoutPolicy(60, 2016, 3.0, 2.0);
    core::MonitorConfig monitor;
    monitor.timeoutSeconds = policy.defaultTimeout;
    monitor.perTaskTimeouts = policy.perTask;
    eval::DetectionResult result = pooledDetection(models, monitor);
    common::DetectionStats stats = result.asStats();
    table.addRow({"learned per-task",
                  std::to_string(result.detected),
                  std::to_string(result.falsePositives),
                  std::to_string(result.falseNegatives),
                  common::formatPercent(stats.precision()),
                  common::formatPercent(stats.recall()),
                  common::formatDouble(result.detectionLatency.mean(),
                                       2)});

    std::printf("%s\n", table.toString().c_str());
    std::printf("Learned per-task timeouts:\n");
    for (const auto &[task, timeout] : policy.perTask) {
        std::printf("  %-8s %5.2fs\n", task.c_str(), timeout);
    }
    return 0;
}
