/**
 * @file
 * Reproduces the paper's Table 5: checking accuracy on interleaved
 * logs over the six experiment groups of Table 3 (10 datasets each,
 * 80 tasks per user).
 */

#include <cstdio>

#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "bench_util.hpp"

using namespace cloudseer;

namespace {

/** Paper Table 5 reference (median accuracy, % interleaved >= 2). */
struct PaperRow
{
    const char *range;
    const char *median;
};

const PaperRow kPaper[] = {
    {"93.24% - 100.0%", "96.83%"}, {"96.82% - 100.0%", "98.09%"},
    {"95.78% - 98.72%", "97.22%"}, {"96.15% - 97.47%", "97.47%"},
    {"94.16% - 99.37%", "98.07%"}, {"92.08% - 97.87%", "96.51%"},
};

} // namespace

int
main()
{
    bench::printHeader("Table 5",
                       "experiment results for checking accuracy");
    const eval::ModeledSystem &models = bench::paperModels();
    core::MonitorConfig monitor;
    monitor.timeoutSeconds = 10.0;

    common::TextTable table({"Grp.", "Acc. Range", "Median",
                             "% Interleaved (>=2, 3, 4)",
                             "Paper Median"});

    for (const eval::ExperimentGroup &group : eval::table3Groups()) {
        common::SampleStats accuracy;
        common::SampleStats inter2, inter3, inter4;
        for (int d = 0; d < group.datasets; ++d) {
            eval::DatasetResult result = eval::runDataset(
                models, bench::datasetFor(group, d), monitor);
            accuracy.add(result.accuracy);
            inter2.add(result.interleavedFraction2);
            inter3.add(result.interleavedFraction3);
            inter4.add(result.interleavedFraction4);
        }

        std::string interleaved =
            common::formatPercent(inter2.mean());
        if (group.users >= 3)
            interleaved += ", " + common::formatPercent(inter3.mean());
        if (group.users >= 4)
            interleaved += ", " + common::formatPercent(inter4.mean());

        table.addRow({std::to_string(group.group),
                      common::formatPercent(accuracy.min()) + " - " +
                          common::formatPercent(accuracy.max()),
                      common::formatPercent(accuracy.median()),
                      interleaved,
                      kPaper[group.group - 1].median});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "Shape claims under reproduction: accuracy stays >= ~92%% on\n"
        "interleaved logs across every group, with no strong link to\n"
        "user count or identifier diversity (paper §5.4).\n");
    return 0;
}
