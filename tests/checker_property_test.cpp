/**
 * @file
 * Property-based and fuzz tests for the interleaved checker over the
 * real mined automata: random interleavings of distinct-identifier
 * sequences must all be accepted; garbage injection must never crash
 * or corrupt real sequences; and the checker must be insensitive to
 * the arrival order of concurrent branches.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/uuid.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

/** One pre-generated execution: messages in a valid automaton order,
 *  each carrying a sequence-unique identifier plus real-shaped ids. */
struct Execution
{
    std::vector<CheckMessage> messages;
};

/**
 * Generate a random accepting walk through an automaton, stamping
 * each message with the sequence's identifier set.
 */
Execution
randomWalk(const TaskAutomaton &automaton, common::Rng &rng,
           logging::RecordId &next_record)
{
    Execution out;
    AutomatonInstance probe(&automaton);
    std::string seq_id = common::makeUuid(rng);
    std::string user_id = common::makeUuid(rng);
    while (!probe.accepting()) {
        std::vector<logging::TemplateId> enabled =
            probe.expectedTemplates();
        logging::TemplateId tpl = rng.pick(enabled);
        probe.consume(tpl);
        CheckMessage message;
        message.tpl = tpl;
        message.identifiers =
            cloudseer::testutil::internIds({seq_id, user_id});
        message.record = next_record++;
        out.messages.push_back(message);
    }
    return out;
}

} // namespace

class InterleavingProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(InterleavingProperty, RandomInterleavingsAllAccepted)
{
    common::Rng rng(GetParam());
    const eval::ModeledSystem &system = models();

    std::vector<const TaskAutomaton *> automata;
    for (const TaskAutomaton &automaton : system.automata)
        automata.push_back(&automaton);
    InterleavedChecker checker(CheckerConfig{}, automata);

    // 2-5 concurrent executions of random tasks.
    int concurrency = rng.uniformInt(2, 5);
    logging::RecordId next_record = 1;
    std::vector<Execution> executions;
    for (int i = 0; i < concurrency; ++i) {
        const TaskAutomaton &automaton =
            system.automata[static_cast<std::size_t>(
                rng.uniformInt(0, 7))];
        executions.push_back(randomWalk(automaton, rng, next_record));
    }

    // Random merge preserving per-execution order.
    std::vector<std::size_t> cursor(executions.size(), 0);
    double t = 0.0;
    std::size_t accepted = 0;
    std::size_t remaining = 0;
    for (const Execution &e : executions)
        remaining += e.messages.size();
    while (remaining > 0) {
        std::size_t pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(executions.size()) - 1));
        if (cursor[pick] >= executions[pick].messages.size())
            continue;
        CheckMessage message = executions[pick].messages[cursor[pick]++];
        message.time = (t += 0.05);
        --remaining;
        for (CheckEvent &event : checker.feed(message)) {
            ASSERT_EQ(event.kind, CheckEventKind::Accepted);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, executions.size())
        << "every interleaved sequence must be accepted";
    EXPECT_EQ(checker.activeGroups(), 0u);
    EXPECT_EQ(checker.stats().unmatched, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleavingProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class FuzzProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzProperty, GarbageNeverCrashesOrCorrupts)
{
    common::Rng rng(GetParam() * 977);
    const eval::ModeledSystem &system = models();
    std::vector<const TaskAutomaton *> automata;
    for (const TaskAutomaton &automaton : system.automata)
        automata.push_back(&automaton);
    InterleavedChecker checker(CheckerConfig{}, automata);

    logging::RecordId next_record = 1;
    Execution real = randomWalk(system.automata[0], rng, next_record);

    // Interleave the real boot with garbage: unknown templates
    // (kInvalidTemplate and large bogus ids), empty identifier lists,
    // error levels, identifiers colliding with the real sequence.
    double t = 0.0;
    std::size_t accepted = 0;
    std::size_t cursor = 0;
    while (cursor < real.messages.size()) {
        int dice = rng.uniformInt(0, 3);
        if (dice == 0) {
            CheckMessage garbage;
            garbage.tpl = logging::kInvalidTemplate;
            garbage.record = next_record++;
            garbage.time = (t += 0.01);
            if (rng.chance(0.5))
                garbage.identifiers = real.messages[0].identifiers;
            if (rng.chance(0.2))
                garbage.level = logging::LogLevel::Warning;
            checker.feed(garbage);
        } else {
            CheckMessage message = real.messages[cursor++];
            message.time = (t += 0.05);
            for (CheckEvent &event : checker.feed(message)) {
                if (event.kind == CheckEventKind::Accepted)
                    ++accepted;
            }
        }
    }
    EXPECT_EQ(accepted, 1u)
        << "the real sequence survives garbage interleaving";
    EXPECT_GT(checker.stats().recoveredPassUnknown, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

class ReorderProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReorderProperty, AdjacentSwapsAreRecoveredOrAccepted)
{
    // Swap one random adjacent pair in a valid walk. Either the
    // swapped order is another linear extension (accepted normally)
    // or recovery (d) repairs it; both ways the sequence completes.
    common::Rng rng(GetParam() * 1013);
    const eval::ModeledSystem &system = models();
    const TaskAutomaton &boot = system.automata[0];
    InterleavedChecker checker(CheckerConfig{}, {&boot});

    logging::RecordId next_record = 1;
    Execution walk = randomWalk(boot, rng, next_record);
    // Never displace the sequence's first message: a message arriving
    // before its sequence exists has no group to repair (the paper's
    // algorithm drops it too — an inherent inaccuracy class).
    std::size_t swap_at = static_cast<std::size_t>(rng.uniformInt(
        1, static_cast<int>(walk.messages.size()) - 2));
    std::swap(walk.messages[swap_at], walk.messages[swap_at + 1]);

    double t = 0.0;
    std::size_t accepted = 0;
    for (CheckMessage message : walk.messages) {
        message.time = (t += 0.05);
        for (CheckEvent &event : checker.feed(message)) {
            if (event.kind == CheckEventKind::Accepted)
                ++accepted;
        }
    }
    EXPECT_EQ(accepted, 1u);
    EXPECT_EQ(checker.activeGroups(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReorderProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(CheckerBounds, ForkFanoutCapHolds)
{
    // Many simultaneous identical sequences with one shared identifier
    // exercise the ambiguity path; group count must stay bounded by
    // the cap, not explode exponentially.
    LetterCatalog letters;
    TaskAutomaton chain = makeLetterAutomaton(
        letters, "chain", {"A", "B", "C", "D"},
        {{"A", "B"}, {"B", "C"}, {"C", "D"}});
    CheckerConfig config;
    config.maxForkFanout = 4;
    InterleavedChecker checker(config, {&chain});

    logging::RecordId rid = 1;
    double t = 0.0;
    const int sequences = 8;
    for (const char *m : {"A", "B", "C", "D"}) {
        for (int s = 0; s < sequences; ++s) {
            checker.feed(
                makeMessage(letters, m, {"shared"}, rid++, t += 0.01));
        }
    }
    checker.finish(t + 1.0);
    // 8 sequences x 4 messages with one shared id: the checker cannot
    // get them all right, but it must stay bounded and terminate.
    EXPECT_EQ(checker.activeGroups(), 0u);
    EXPECT_LE(checker.stats().messages, 32u);
}
