/**
 * @file
 * Tests for the interned-identifier routing index (DESIGN.md §9):
 * the identifier interner, posting-list maintenance across the full
 * group lifecycle (create, decisive expansion, fork, retire, zombie,
 * finish), and the differential guarantee — the indexed checker's
 * report sequence is bit-identical to the reference scan path on
 * clean and transport-perturbed streams.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collect/stream_perturber.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "logging/identifier_interner.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::internIds;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Paper Figure 3 boot automaton over letters. */
TaskAutomaton
bootAutomaton(LetterCatalog &letters)
{
    return makeLetterAutomaton(letters, "boot",
                               {"A", "P", "S", "G", "T", "W"},
                               {{"A", "P"},
                                {"P", "S"},
                                {"S", "G"},
                                {"S", "T"},
                                {"G", "W"},
                                {"T", "W"}});
}

} // namespace

// --- IdentifierInterner -----------------------------------------------

TEST(IdentifierInterner, AssignsDenseCollisionFreeTokens)
{
    logging::IdentifierInterner interner;
    std::vector<logging::IdToken> tokens;
    for (int i = 0; i < 1000; ++i)
        tokens.push_back(interner.intern("id-" + std::to_string(i)));

    // Dense: first-seen order, no gaps, no collisions.
    for (std::size_t i = 0; i < tokens.size(); ++i)
        EXPECT_EQ(tokens[i], static_cast<logging::IdToken>(i));
    EXPECT_EQ(interner.size(), 1000u);

    // Stable: re-interning returns the original token.
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(interner.intern("id-" + std::to_string(i)),
                  tokens[static_cast<std::size_t>(i)]);
    }
    EXPECT_EQ(interner.size(), 1000u);

    // Round trip and non-interning lookup.
    EXPECT_EQ(interner.text(tokens[17]), "id-17");
    EXPECT_EQ(interner.find("id-42"), tokens[42]);
    EXPECT_EQ(interner.find("never-seen"), logging::kInvalidIdToken);
}

TEST(IdentifierInterner, ProcessInstanceIsShared)
{
    logging::IdentifierInterner &a = logging::IdentifierInterner::process();
    logging::IdentifierInterner &b = logging::IdentifierInterner::process();
    EXPECT_EQ(&a, &b);
    logging::IdToken token = a.intern("routing-index-test-shared");
    EXPECT_EQ(b.find("routing-index-test-shared"), token);
}

// --- posting-list maintenance ------------------------------------------

TEST(RoutingIndex, PostingsFollowDecisiveExpansionAndAcceptRetire)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    InterleavedChecker checker(CheckerConfig{}, {&boot});

    std::vector<logging::IdToken> u1 = internIds({"seq-1"});
    std::vector<logging::IdToken> u2 = internIds({"seq-1", "user-1"});

    checker.feed(makeMessage(letters, "A", {"seq-1"}, 1, 0.1));
    ASSERT_TRUE(checker.indexConsistent());
    ASSERT_NE(checker.postingsFor(u1[0]), nullptr);
    EXPECT_EQ(checker.postingsFor(u1[0])->size(), 1u);
    EXPECT_EQ(checker.postingsFor(internIds({"user-1"})[0]), nullptr);

    // Decisive consumption expands the sole-owner set in place; the
    // new token gains a posting pointing at the same set.
    checker.feed(makeMessage(letters, "P", {"seq-1", "user-1"}, 2, 0.2));
    ASSERT_TRUE(checker.indexConsistent());
    ASSERT_NE(checker.postingsFor(u2[1]), nullptr);
    EXPECT_EQ(*checker.postingsFor(u2[1]), *checker.postingsFor(u2[0]));

    // Run the sequence to acceptance: the winner's lineage is pruned,
    // the set drains, and every posting goes with it.
    for (const char *letter : {"S", "G", "T", "W"}) {
        checker.feed(makeMessage(letters, letter, {"seq-1"}, 3, 0.3));
        ASSERT_TRUE(checker.indexConsistent()) << letter;
    }
    EXPECT_EQ(checker.activeGroups(), 0u);
    EXPECT_EQ(checker.activeIdentifierSets(), 0u);
    EXPECT_EQ(checker.postingTokens(), 0u);
    EXPECT_EQ(checker.postingsFor(u1[0]), nullptr);
}

TEST(RoutingIndex, PostingsSurviveForkMergeAndRivalPruning)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    InterleavedChecker checker(CheckerConfig{}, {&boot});

    // Two live sequences with distinct identifiers.
    checker.feed(makeMessage(letters, "A", {"seq-1"}, 1, 0.1));
    checker.feed(makeMessage(letters, "A", {"seq-2"}, 2, 0.2));
    ASSERT_TRUE(checker.indexConsistent());
    EXPECT_EQ(checker.activeGroups(), 2u);

    // An identifier-less message is ambiguous between them: case (2)
    // forks clones under one pooled identifier set. The pooled set
    // holds both sequences' tokens, so each token's posting list now
    // names two sets (the original and the pooled one).
    checker.feed(makeMessage(letters, "P", {}, 3, 0.3));
    ASSERT_TRUE(checker.indexConsistent());
    std::vector<logging::IdToken> s1 = internIds({"seq-1"});
    ASSERT_NE(checker.postingsFor(s1[0]), nullptr);
    EXPECT_EQ(checker.postingsFor(s1[0])->size(), 2u);

    // Finish one fork's sequence: acceptance prunes the winner's
    // lineage (including its original ancestor) and the rival clone.
    // The clones are state-equivalent, so which lineage wins is the
    // rng's pick — either way exactly one original hypothesis
    // survives, owning exactly one of the two tokens' postings.
    for (const char *letter : {"S", "G", "T", "W"})
        checker.feed(makeMessage(letters, letter, {"seq-1"}, 4, 0.4));
    ASSERT_TRUE(checker.indexConsistent());
    EXPECT_EQ(checker.activeGroups(), 1u);
    EXPECT_EQ(checker.activeIdentifierSets(), 1u);
    bool s1_live = checker.postingsFor(s1[0]) != nullptr;
    bool s2_live =
        checker.postingsFor(internIds({"seq-2"})[0]) != nullptr;
    EXPECT_NE(s1_live, s2_live);
}

TEST(RoutingIndex, PostingsAcrossZombieTransitionAndExpiry)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;
    config.zombieAbsorption = true;
    InterleavedChecker checker(config, {&boot});

    checker.feed(makeMessage(letters, "A", {"seq-z"}, 1, 0.0));
    std::vector<logging::IdToken> z = internIds({"seq-z"});

    // Timeout: the group is reported and zombified, not erased — its
    // identifier set (and postings) must stay live to absorb strays.
    std::vector<CheckEvent> timeouts = checker.sweepTimeouts(100.0, 10.0);
    ASSERT_EQ(timeouts.size(), 1u);
    EXPECT_EQ(checker.activeGroups(), 1u);
    ASSERT_TRUE(checker.indexConsistent());
    ASSERT_NE(checker.postingsFor(z[0]), nullptr);

    // Long past the zombie horizon the group fades; the set drains.
    checker.sweepTimeouts(1000.0, 10.0);
    EXPECT_EQ(checker.activeGroups(), 0u);
    EXPECT_EQ(checker.postingTokens(), 0u);
    ASSERT_TRUE(checker.indexConsistent());
}

TEST(RoutingIndex, FinishClearsAllRoutingState)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    InterleavedChecker checker(CheckerConfig{}, {&boot});

    checker.feed(makeMessage(letters, "A", {"f-1"}, 1, 0.1));
    checker.feed(makeMessage(letters, "A", {"f-2"}, 2, 0.2));
    EXPECT_GT(checker.postingTokens(), 0u);

    checker.finish(1.0);
    EXPECT_EQ(checker.activeGroups(), 0u);
    EXPECT_EQ(checker.activeIdentifierSets(), 0u);
    EXPECT_EQ(checker.postingTokens(), 0u);
    EXPECT_TRUE(checker.indexConsistent());
}

// --- differential: indexed ≡ scan --------------------------------------

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 60;
        config.checkEvery = 20;
        config.stableChecks = 3;
        config.maxRuns = 300;
        return eval::buildModels(config);
    }();
    return system;
}

/** Byte-exact fingerprint of everything a report carries. */
std::string
fingerprint(const MonitorReport &report)
{
    const CheckEvent &event = report.event;
    std::string out;
    out += std::to_string(static_cast<int>(event.kind));
    out += '|';
    out += event.taskName;
    out += '|';
    for (const std::string &task : event.candidateTasks) {
        out += task;
        out += ',';
    }
    out += '|';
    for (logging::RecordId record : event.records) {
        out += std::to_string(record);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.frontierTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.expectedTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "|%.9f|", event.time);
    out += time_buf;
    out += std::to_string(event.group);
    out += '|';
    out += report.endOfStream ? '1' : '0';
    return out;
}

MonitorConfig
monitorConfigFor(bool routing_index)
{
    MonitorConfig config;
    config.checker.routingIndex = routing_index;
    config.ingest = hardenedIngestDefaults();
    return config;
}

/** Feed both monitors a step's worth of reports and compare. */
void
expectIdenticalReports(const std::vector<MonitorReport> &indexed,
                       const std::vector<MonitorReport> &scan,
                       const char *where, std::size_t step)
{
    ASSERT_EQ(indexed.size(), scan.size())
        << where << " diverged at step " << step;
    for (std::size_t i = 0; i < indexed.size(); ++i) {
        ASSERT_EQ(fingerprint(indexed[i]), fingerprint(scan[i]))
            << where << " diverged at step " << step << " report " << i;
    }
}

void
expectIdenticalStats(const CheckerStats &a, const CheckerStats &b)
{
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.decisive, b.decisive);
    EXPECT_EQ(a.ambiguous, b.ambiguous);
    EXPECT_EQ(a.recoveredPassUnknown, b.recoveredPassUnknown);
    EXPECT_EQ(a.recoveredNewSequence, b.recoveredNewSequence);
    EXPECT_EQ(a.recoveredOtherSet, b.recoveredOtherSet);
    EXPECT_EQ(a.recoveredFalseDependency, b.recoveredFalseDependency);
    EXPECT_EQ(a.unmatched, b.unmatched);
    EXPECT_EQ(a.errorsReported, b.errorsReported);
    EXPECT_EQ(a.timeoutsReported, b.timeoutsReported);
    EXPECT_EQ(a.timeoutsSuppressed, b.timeoutsSuppressed);
    EXPECT_EQ(a.accepted, b.accepted);
}

} // namespace

TEST(RoutingIndexDifferential, CleanStreamReportsBitIdentical)
{
    const eval::ModeledSystem &system = models();
    eval::DatasetConfig dataset_config;
    dataset_config.users = 3;
    dataset_config.tasksPerUser = 40;
    dataset_config.seed = 2026;
    eval::GeneratedDataset dataset = eval::generateDataset(dataset_config);
    ASSERT_FALSE(dataset.stream.empty());

    WorkflowMonitor indexed(monitorConfigFor(true), system.catalog,
                            system.automataCopy());
    WorkflowMonitor scan(monitorConfigFor(false), system.catalog,
                         system.automataCopy());

    std::size_t total_reports = 0;
    for (std::size_t i = 0; i < dataset.stream.size(); ++i) {
        std::vector<MonitorReport> a = indexed.feed(dataset.stream[i]);
        std::vector<MonitorReport> b = scan.feed(dataset.stream[i]);
        expectIdenticalReports(a, b, "clean-feed", i);
        total_reports += a.size();
    }
    expectIdenticalReports(indexed.finish(), scan.finish(),
                           "clean-finish", dataset.stream.size());
    expectIdenticalStats(indexed.stats(), scan.stats());
    EXPECT_GT(indexed.stats().accepted, 0u)
        << "workload produced no acceptances; differential is vacuous";
    (void)total_reports;
}

TEST(RoutingIndexDifferential, PerturbedWireStreamReportsBitIdentical)
{
    const eval::ModeledSystem &system = models();
    eval::DatasetConfig dataset_config;
    dataset_config.users = 3;
    dataset_config.tasksPerUser = 30;
    dataset_config.seed = 777;
    eval::GeneratedDataset dataset = eval::generateDataset(dataset_config);

    collect::PerturbationConfig adversity;
    adversity.dropProbability = 0.02;
    adversity.duplicateProbability = 0.02;
    adversity.truncateProbability = 0.005;
    adversity.corruptProbability = 0.005;
    adversity.clockSkewMaxSeconds = 0.05;
    adversity.burstProbability = 0.0005;
    adversity.seed = 99;
    collect::StreamPerturber perturber(adversity);
    collect::PerturbedStream wire = perturber.apply(dataset.stream);
    ASSERT_FALSE(wire.lines.empty());

    WorkflowMonitor indexed(monitorConfigFor(true), system.catalog,
                            system.automataCopy());
    WorkflowMonitor scan(monitorConfigFor(false), system.catalog,
                         system.automataCopy());

    for (std::size_t i = 0; i < wire.lines.size(); ++i) {
        std::vector<MonitorReport> a = indexed.feedLine(wire.lines[i]);
        std::vector<MonitorReport> b = scan.feedLine(wire.lines[i]);
        expectIdenticalReports(a, b, "wire-feed", i);
    }
    expectIdenticalReports(indexed.finish(), scan.finish(),
                           "wire-finish", wire.lines.size());
    expectIdenticalStats(indexed.stats(), scan.stats());
}
