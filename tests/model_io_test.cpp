/**
 * @file
 * Unit tests for model persistence: token escaping, save/load round
 * trips (including over the real mined models), and rejection of
 * malformed files.
 */

#include <gtest/gtest.h>

#include "core/mining/model_io.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

TEST(ModelToken, EscapesAndRestores)
{
    for (const std::string &raw :
         {std::string("plain"), std::string("with space"),
          std::string("tabs\tand\nnewlines"), std::string("100%"),
          std::string("[req-<uuid>] \"POST /v2\" status: <num>"),
          std::string("")}) {
        std::string encoded = encodeModelToken(raw);
        EXPECT_EQ(encoded.find(' '), std::string::npos) << raw;
        EXPECT_EQ(encoded.find('\n'), std::string::npos) << raw;
        auto decoded = decodeModelToken(encoded);
        ASSERT_TRUE(decoded.has_value()) << raw;
        EXPECT_EQ(*decoded, raw);
    }
}

TEST(ModelToken, RejectsBadEscapes)
{
    EXPECT_FALSE(decodeModelToken("abc%").has_value());
    EXPECT_FALSE(decodeModelToken("abc%2").has_value());
    EXPECT_FALSE(decodeModelToken("abc%zz").has_value());
}

TEST(ModelIo, RoundTripsHandBuiltAutomaton)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "demo task", {"A", "B", "C"},
        {{"A", "B"}, {"A", "C"}});

    std::string text = saveModelsToString(*letters.catalog, {automaton});
    auto loaded = loadModelsFromString(text);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->automata.size(), 1u);
    const TaskAutomaton &copy = loaded->automata[0];
    EXPECT_EQ(copy.name(), "demo task");
    EXPECT_EQ(copy.eventCount(), 3u);
    EXPECT_EQ(copy.edgeCount(), 2u);
    EXPECT_EQ(copy.forkStates().size(), 1u);
}

TEST(ModelIo, RoundTripsTheRealMinedModels)
{
    eval::ModelingConfig config;
    config.minRuns = 40;
    config.maxRuns = 150;
    eval::ModeledSystem models = eval::buildModels(config);

    std::string text =
        saveModelsToString(*models.catalog, models.automata);
    auto loaded = loadModelsFromString(text);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->automata.size(), models.automata.size());
    for (std::size_t i = 0; i < models.automata.size(); ++i) {
        EXPECT_EQ(loaded->automata[i].name(),
                  models.automata[i].name());
        EXPECT_EQ(loaded->automata[i].eventCount(),
                  models.automata[i].eventCount());
        EXPECT_EQ(loaded->automata[i].edgeCount(),
                  models.automata[i].edgeCount());
    }

    // Save(load(x)) is a fixed point (ids are re-interned densely).
    std::string again = saveModelsToString(*loaded->catalog,
                                           loaded->automata);
    auto reloaded = loadModelsFromString(again);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(saveModelsToString(*reloaded->catalog,
                                 reloaded->automata),
              again);
}

TEST(ModelIo, LoadedModelsMonitorEquivalently)
{
    // A monitor built from persisted models must accept the same
    // dataset as one built from the in-memory models.
    eval::ModelingConfig config;
    config.minRuns = 40;
    config.maxRuns = 150;
    eval::ModeledSystem models = eval::buildModels(config);

    auto loaded = loadModelsFromString(
        saveModelsToString(*models.catalog, models.automata));
    ASSERT_TRUE(loaded.has_value());

    eval::ModeledSystem restored;
    restored.catalog = loaded->catalog;
    restored.automata = std::move(loaded->automata);

    eval::DatasetConfig dataset;
    dataset.users = 2;
    dataset.tasksPerUser = 8;
    dataset.seed = 3;
    eval::GeneratedDataset generated = eval::generateDataset(dataset);

    core::MonitorConfig monitor_config;
    eval::DatasetResult original =
        eval::checkDataset(models, generated, monitor_config);
    eval::DatasetResult reloaded =
        eval::checkDataset(restored, generated, monitor_config);
    EXPECT_EQ(original.acceptedCorrect, reloaded.acceptedCorrect);
    EXPECT_EQ(reloaded.acceptedCorrect, generated.totalTasks);
}

TEST(ModelIo, RejectsMalformedFiles)
{
    EXPECT_FALSE(loadModelsFromString("").has_value());
    EXPECT_FALSE(loadModelsFromString("wrong-magic 1\n").has_value());
    EXPECT_FALSE(
        loadModelsFromString("cloudseer-models 999\n").has_value());
    // Truncated automaton section.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "template 0 svc A\n"
                     "automaton t 1 0\n"
                     "event 0 0 0\n")
                     .has_value());
    // Edge out of range.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "template 0 svc A\n"
                     "automaton t 1 1\n"
                     "event 0 0 0\n"
                     "edge 0 7 0\n"
                     "end\n")
                     .has_value());
    // Event references an unknown template.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "automaton t 1 0\n"
                     "event 0 42 0\n"
                     "end\n")
                     .has_value());
    // Unknown directive.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "banana 1 2 3\n")
                     .has_value());
}

TEST(ModelIo, EmptyBundleIsValid)
{
    logging::TemplateCatalog catalog;
    auto loaded =
        loadModelsFromString(saveModelsToString(catalog, {}));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->automata.empty());
}
