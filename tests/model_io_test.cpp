/**
 * @file
 * Unit tests for model persistence: token escaping, save/load round
 * trips (including over the real mined models), and rejection of
 * malformed files.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/model_lint.hpp"
#include "core/mining/model_io.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

TEST(ModelToken, EscapesAndRestores)
{
    for (const std::string &raw :
         {std::string("plain"), std::string("with space"),
          std::string("tabs\tand\nnewlines"), std::string("100%"),
          std::string("[req-<uuid>] \"POST /v2\" status: <num>"),
          std::string("")}) {
        std::string encoded = encodeModelToken(raw);
        EXPECT_EQ(encoded.find(' '), std::string::npos) << raw;
        EXPECT_EQ(encoded.find('\n'), std::string::npos) << raw;
        auto decoded = decodeModelToken(encoded);
        ASSERT_TRUE(decoded.has_value()) << raw;
        EXPECT_EQ(*decoded, raw);
    }
}

TEST(ModelToken, RejectsBadEscapes)
{
    EXPECT_FALSE(decodeModelToken("abc%").has_value());
    EXPECT_FALSE(decodeModelToken("abc%2").has_value());
    EXPECT_FALSE(decodeModelToken("abc%zz").has_value());
}

TEST(ModelIo, RoundTripsHandBuiltAutomaton)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "demo task", {"A", "B", "C"},
        {{"A", "B"}, {"A", "C"}});

    std::string text = saveModelsToString(*letters.catalog, {automaton});
    auto loaded = loadModelsFromString(text);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->automata.size(), 1u);
    const TaskAutomaton &copy = loaded->automata[0];
    EXPECT_EQ(copy.name(), "demo task");
    EXPECT_EQ(copy.eventCount(), 3u);
    EXPECT_EQ(copy.edgeCount(), 2u);
    EXPECT_EQ(copy.forkStates().size(), 1u);
}

TEST(ModelIo, RoundTripsTheRealMinedModels)
{
    eval::ModelingConfig config;
    config.minRuns = 40;
    config.maxRuns = 150;
    eval::ModeledSystem models = eval::buildModels(config);

    std::string text =
        saveModelsToString(*models.catalog, models.automata);
    auto loaded = loadModelsFromString(text);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->automata.size(), models.automata.size());
    for (std::size_t i = 0; i < models.automata.size(); ++i) {
        EXPECT_EQ(loaded->automata[i].name(),
                  models.automata[i].name());
        EXPECT_EQ(loaded->automata[i].eventCount(),
                  models.automata[i].eventCount());
        EXPECT_EQ(loaded->automata[i].edgeCount(),
                  models.automata[i].edgeCount());
    }

    // Save(load(x)) is a fixed point (ids are re-interned densely).
    std::string again = saveModelsToString(*loaded->catalog,
                                           loaded->automata);
    auto reloaded = loadModelsFromString(again);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(saveModelsToString(*reloaded->catalog,
                                 reloaded->automata),
              again);
}

TEST(ModelIo, LoadedModelsMonitorEquivalently)
{
    // A monitor built from persisted models must accept the same
    // dataset as one built from the in-memory models.
    eval::ModelingConfig config;
    config.minRuns = 40;
    config.maxRuns = 150;
    eval::ModeledSystem models = eval::buildModels(config);

    auto loaded = loadModelsFromString(
        saveModelsToString(*models.catalog, models.automata));
    ASSERT_TRUE(loaded.has_value());

    eval::ModeledSystem restored;
    restored.catalog = loaded->catalog;
    restored.automata = std::move(loaded->automata);

    eval::DatasetConfig dataset;
    dataset.users = 2;
    dataset.tasksPerUser = 8;
    dataset.seed = 3;
    eval::GeneratedDataset generated = eval::generateDataset(dataset);

    core::MonitorConfig monitor_config;
    eval::DatasetResult original =
        eval::checkDataset(models, generated, monitor_config);
    eval::DatasetResult reloaded =
        eval::checkDataset(restored, generated, monitor_config);
    EXPECT_EQ(original.acceptedCorrect, reloaded.acceptedCorrect);
    EXPECT_EQ(reloaded.acceptedCorrect, generated.totalTasks);
}

TEST(ModelIo, RejectsMalformedFiles)
{
    EXPECT_FALSE(loadModelsFromString("").has_value());
    EXPECT_FALSE(loadModelsFromString("wrong-magic 1\n").has_value());
    EXPECT_FALSE(
        loadModelsFromString("cloudseer-models 999\n").has_value());
    // Truncated automaton section.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "template 0 svc A\n"
                     "automaton t 1 0\n"
                     "event 0 0 0\n")
                     .has_value());
    // Edge out of range.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "template 0 svc A\n"
                     "automaton t 1 1\n"
                     "event 0 0 0\n"
                     "edge 0 7 0\n"
                     "end\n")
                     .has_value());
    // Event references an unknown template.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "automaton t 1 0\n"
                     "event 0 42 0\n"
                     "end\n")
                     .has_value());
    // Unknown directive.
    EXPECT_FALSE(loadModelsFromString(
                     "cloudseer-models 1\n"
                     "banana 1 2 3\n")
                     .has_value());
}

TEST(ModelIo, EmptyBundleIsValid)
{
    logging::TemplateCatalog catalog;
    auto loaded =
        loadModelsFromString(saveModelsToString(catalog, {}));
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->automata.empty());
}

TEST(ModelIo, SourceMapRecordsDirectiveLines)
{
    const std::string text = "cloudseer-models 1\n"   // line 1
                             "template 0 svc A\n"     // line 2
                             "template 1 svc B\n"     // line 3
                             "automaton t 2 1\n"      // line 4
                             "event 0 0 0\n"          // line 5
                             "event 1 1 0\n"          // line 6
                             "edge 0 1 1\n"           // line 7
                             "end\n";                 // line 8
    std::istringstream in(text);
    ModelSourceMap sources;
    auto loaded = loadModels(in, &sources);
    ASSERT_TRUE(loaded.has_value());

    EXPECT_EQ(sources.declLine(0), 4);
    EXPECT_EQ(sources.eventLine(0, 0), 5);
    EXPECT_EQ(sources.eventLine(0, 1), 6);
    EXPECT_EQ(sources.edgeLine(0, 0, 1), 7);
    ASSERT_EQ(sources.templateLines.size(), 2u);

    // Out-of-range queries degrade to "unknown" rather than crash.
    EXPECT_EQ(sources.eventLine(0, 9), 0);
    EXPECT_EQ(sources.eventLine(3, 0), 0);
    EXPECT_EQ(sources.edgeLine(0, 1, 0), 0);
    EXPECT_EQ(sources.declLine(7), 0);
}

TEST(ModelIo, SourceMapSkipsBlankLinesCorrectly)
{
    const std::string text = "cloudseer-models 1\n"  // line 1
                             "\n"                    // line 2
                             "template 0 svc A\n"    // line 3
                             "\n"                    // line 4
                             "automaton t 1 0\n"     // line 5
                             "event 0 0 0\n"         // line 6
                             "end\n";
    std::istringstream in(text);
    ModelSourceMap sources;
    auto loaded = loadModels(in, &sources);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(sources.declLine(0), 5);
    EXPECT_EQ(sources.eventLine(0, 0), 6);
}

/**
 * Broken-model matrix: every corrupted bundle either fails to load
 * (structural damage the parser owns) or loads and produces the
 * matching seer-lint diagnostic (semantic damage the analyzer owns).
 * No corruption may slip through both nets.
 */
TEST(ModelIo, BrokenModelsLoadFailOrLintFail)
{
    struct Case
    {
        const char *label;
        const char *text;
        const char *lintId; ///< nullptr = the loader must reject it
    };
    const Case cases[] = {
        {"truncated header", "cloudseer-models\n", nullptr},
        {"event count lies",
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "automaton t 2 0\n"
         "event 0 0 0\n"
         "end\n",
         nullptr},
        {"duplicate edge",
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "template 1 svc B%20<uuid>\n"
         "automaton t 2 2\n"
         "event 0 0 0\n"
         "event 1 1 0\n"
         "edge 0 1 0\n"
         "edge 0 1 0\n"
         "end\n",
         "SL001"},
        {"self-loop edge",
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "automaton t 1 1\n"
         "event 0 0 0\n"
         "edge 0 0 0\n"
         "end\n",
         "SL002"},
        {"dependency cycle",
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "template 1 svc B%20<uuid>\n"
         "automaton t 2 2\n"
         "event 0 0 0\n"
         "event 1 1 0\n"
         "edge 0 1 0\n"
         "edge 1 0 0\n"
         "end\n",
         "SL003"},
        {"strong cycle",
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "template 1 svc B%20<uuid>\n"
         "automaton t 2 2\n"
         "event 0 0 0\n"
         "event 1 1 0\n"
         "edge 0 1 1\n"
         "edge 1 0 1\n"
         "end\n",
         "SL009"},
        {"two templates merge into one aliased event pair",
         // Two template directives with identical text re-intern to
         // one id, leaving duplicate (template, occurrence) events.
         "cloudseer-models 1\n"
         "template 0 svc A%20<uuid>\n"
         "template 1 svc A%20<uuid>\n"
         "automaton t 2 1\n"
         "event 0 0 0\n"
         "event 1 1 0\n"
         "edge 0 1 0\n"
         "end\n",
         "SL007"},
        {"empty automaton",
         "cloudseer-models 1\n"
         "automaton t 0 0\n"
         "end\n",
         "SL002"},
    };

    for (const Case &broken : cases) {
        auto loaded = loadModelsFromString(broken.text);
        if (broken.lintId == nullptr) {
            EXPECT_FALSE(loaded.has_value()) << broken.label;
            continue;
        }
        ASSERT_TRUE(loaded.has_value()) << broken.label;
        analysis::LintReport report = analysis::lintModels(
            loaded->automata, *loaded->catalog);
        EXPECT_FALSE(report.withId(broken.lintId).empty())
            << broken.label << "\n"
            << report.toText();
        EXPECT_TRUE(report.hasErrors()) << broken.label;
    }
}
