/**
 * @file
 * Integration tests: the full pipeline (simulate → ship → model →
 * monitor → score) on small variants of the paper's experiments, plus
 * the paper's Figure 5 reordering case.
 */

#include <gtest/gtest.h>

#include "collect/log_store.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/detection_harness.hpp"
#include "eval/experiment_config.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Shared modeling result (built once; modeling is deterministic). */
const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.checkEvery = 10;
        config.stableChecks = 3;
        config.maxRuns = 250;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(Integration, ModelingMatchesFlowStructure)
{
    const eval::ModeledSystem &system = models();
    ASSERT_EQ(system.automata.size(), sim::kTaskTypeCount);
    ASSERT_EQ(system.perTask.size(), sim::kTaskTypeCount);
    for (const eval::TaskModelInfo &info : system.perTask) {
        // Preprocessing must recover exactly the key messages of the
        // generating flow (Table 2 "Msgs").
        EXPECT_EQ(info.messages, sim::keyMessageCount(info.type))
            << sim::taskTypeName(info.type);
        // The reduced DAG cannot have fewer edges than a tree over the
        // events, nor an explosion beyond ~2x events.
        EXPECT_GE(info.transitions, info.messages - 1)
            << sim::taskTypeName(info.type);
        EXPECT_LE(info.transitions, info.messages * 2)
            << sim::taskTypeName(info.type);
    }
}

TEST(Integration, ModelingIsDeterministic)
{
    eval::ModelingConfig config;
    config.minRuns = 30;
    config.checkEvery = 10;
    config.stableChecks = 2;
    config.maxRuns = 100;
    eval::ModeledSystem a = eval::buildModels(config);
    eval::ModeledSystem b = eval::buildModels(config);
    ASSERT_EQ(a.automata.size(), b.automata.size());
    for (std::size_t i = 0; i < a.automata.size(); ++i)
        EXPECT_TRUE(a.automata[i].sameStructure(b.automata[i]));
}

TEST(Integration, BootAutomatonHasForksAndJoins)
{
    const eval::ModeledSystem &system = models();
    const TaskAutomaton &boot = system.automata[0];
    ASSERT_EQ(boot.name(), "boot");
    EXPECT_FALSE(boot.forkStates().empty())
        << "async AMQP branches must appear as forks";
    EXPECT_FALSE(boot.joinStates().empty());
    ASSERT_EQ(boot.initialEvents().size(), 1u)
        << "boot starts with the accepted-request message";
}

TEST(Integration, CleanDatasetFullyAccepted)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 10;
    config.seed = 7;
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor);
    EXPECT_EQ(result.totalTasks, 20u);
    EXPECT_EQ(result.acceptedCorrect, 20u);
    EXPECT_EQ(result.acceptedWrong, 0u);
    EXPECT_EQ(result.notAccepted, 0u);
    EXPECT_GE(result.accuracy, 0.999);
}

// Parameterized sweep over the paper's Table 3 axes (small datasets).
class AccuracySweep
    : public ::testing::TestWithParam<eval::ExperimentGroup>
{
};

TEST_P(AccuracySweep, InterleavedAccuracyStaysHigh)
{
    eval::ExperimentGroup group = GetParam();
    eval::DatasetConfig config;
    config.users = group.users;
    config.singleUid = group.singleUid;
    config.tasksPerUser = group.tasksPerUser;
    config.seed = eval::datasetSeed(group.group, 0);
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor);

    EXPECT_EQ(result.sequences,
              static_cast<std::size_t>(group.users *
                                       group.tasksPerUser));
    // The paper's worst observed accuracy is 92.08%, but its formula
    // divides misses by *interleaved* sequences, which amplifies noise
    // on these small datasets (a handful of interleaved sequences per
    // run). Assert the robust per-task metric tightly and the paper
    // formula loosely; the full-scale bench reproduces the paper
    // numbers.
    EXPECT_GE(static_cast<double>(result.acceptedCorrect) /
                  static_cast<double>(result.totalTasks),
              0.8)
        << "group " << group.group << " users " << group.users
        << " singleUid " << group.singleUid;
    EXPECT_GE(result.accuracy, 0.6)
        << "group " << group.group << " users " << group.users
        << " singleUid " << group.singleUid;
    EXPECT_GT(result.stats.decisiveFraction(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Table3Small, AccuracySweep,
    ::testing::ValuesIn(eval::table3GroupsSmall()));

TEST(Integration, WirePathEquivalence)
{
    // Feeding parsed lines (no ground truth) must accept exactly as
    // many sequences as feeding records directly.
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 6;
    config.seed = 21;
    eval::GeneratedDataset dataset = eval::generateDataset(config);

    collect::LogStore store;
    store.appendStream(dataset.stream);

    core::MonitorConfig monitor_config;
    core::WorkflowMonitor monitor(monitor_config, models().catalog,
                                  models().automataCopy());
    std::size_t accepted = 0;
    for (const std::string &line : store.toLines()) {
        for (const core::MonitorReport &report :
             monitor.feedLine(line)) {
            if (report.event.kind == CheckEventKind::Accepted)
                ++accepted;
        }
    }
    for (const core::MonitorReport &report : monitor.finish()) {
        if (report.event.kind == CheckEventKind::Accepted)
            ++accepted;
    }
    EXPECT_EQ(monitor.malformedLines(), 0u);
    EXPECT_EQ(accepted, dataset.totalTasks);
}

TEST(Integration, AbortInjectionDetected)
{
    eval::DetectionConfig config;
    config.point = sim::InjectionPoint::AmqpReceiver;
    config.targetProblems = 5;
    config.tasksPerUserPerRun = 10;
    config.seed = 5;
    core::MonitorConfig monitor;
    eval::DetectionResult result =
        eval::runDetectionExperiment(models(), config, monitor);
    EXPECT_GE(result.delayProblems + result.abortProblems +
                  result.silentProblems,
              5);
    EXPECT_GE(result.detected, 4)
        << "most injected problems must be caught";
    EXPECT_LE(result.falsePositives, 3);
}

TEST(Integration, DetectionUsesBothCriteria)
{
    // Across points, both the error-message and the timeout criteria
    // must contribute detections (paper: 16 by error, 38 by timeout).
    int by_error = 0;
    int by_timeout = 0;
    for (sim::InjectionPoint point :
         {sim::InjectionPoint::AmqpReceiver,
          sim::InjectionPoint::ImageCreate}) {
        eval::DetectionConfig config;
        config.point = point;
        config.targetProblems = 6;
        config.tasksPerUserPerRun = 10;
        config.seed = 11;
        core::MonitorConfig monitor;
        eval::DetectionResult result =
            eval::runDetectionExperiment(models(), config, monitor);
        by_error += result.detectedByError;
        by_timeout += result.detectedByTimeout;
    }
    EXPECT_GT(by_error, 0);
    EXPECT_GT(by_timeout, 0);
}

TEST(Integration, Figure5ReorderingCausesDocumentedFalsePositive)
{
    // Paper Figure 5: two automata share messages m1 and m2 in
    // opposite orders. A reordered stream makes the checker keep the
    // wrong automaton, which later times out — the paper's analysed
    // false-positive mechanism.
    LetterCatalog letters;
    TaskAutomaton a1 = makeLetterAutomaton(
        letters, "stop", {"X", "M1", "M2", "M3"},
        {{"X", "M1"}, {"M1", "M2"}, {"M2", "M3"}});
    TaskAutomaton a2 = makeLetterAutomaton(
        letters, "start", {"X", "M2", "M1", "M4"},
        {{"X", "M2"}, {"M2", "M1"}, {"M1", "M4"}});
    InterleavedChecker checker(CheckerConfig{}, {&a1, &a2});

    // Normal order: X m1 m2 m3 -> accepted as "stop".
    logging::RecordId rid = 1;
    checker.feed(makeMessage(letters, "X", {"u"}, rid++, 0.1));
    checker.feed(makeMessage(letters, "M1", {"u"}, rid++, 0.2));
    checker.feed(makeMessage(letters, "M2", {"u"}, rid++, 0.3));
    auto accepted =
        checker.feed(makeMessage(letters, "M3", {"u"}, rid++, 0.4));
    ASSERT_EQ(accepted.size(), 1u);
    EXPECT_EQ(accepted[0].taskName, "stop");

    // Reordered m2 before m1 under load: A2 happens to fit, so no
    // divergence fires; m3 is then unconsumable and m4 never comes.
    checker.feed(makeMessage(letters, "X", {"v"}, rid++, 5.1));
    checker.feed(makeMessage(letters, "M2", {"v"}, rid++, 5.2));
    checker.feed(makeMessage(letters, "M1", {"v"}, rid++, 5.3));
    auto diverged =
        checker.feed(makeMessage(letters, "M3", {"v"}, rid++, 5.4));
    EXPECT_TRUE(diverged.empty());

    auto timeouts = checker.sweepTimeouts(20.0, 10.0);
    ASSERT_EQ(timeouts.size(), 1u);
    EXPECT_EQ(timeouts[0].kind, CheckEventKind::Timeout);
    EXPECT_EQ(timeouts[0].taskName, "start")
        << "the wrong automaton survived, as the paper describes";
}

TEST(Integration, HeavyShippingTailStillMostlyAccepted)
{
    // Stress the recovery heuristics with an unhealthy shipper.
    eval::DatasetConfig config;
    config.users = 3;
    config.tasksPerUser = 10;
    config.seed = 31;
    config.shipping.tailProbability = 0.02;
    config.shipping.tailMin = 0.1;
    config.shipping.tailMax = 0.5;
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor);
    EXPECT_GE(static_cast<double>(result.acceptedCorrect) /
                  static_cast<double>(result.sequences),
              0.8);
}
