/**
 * @file
 * Tests for the extension features: per-task timeout estimation (the
 * paper's stated future work), automaton refinement from on-the-fly
 * dependency removals (automating the §5.6 mitigation), and the
 * offline statistical baseline.
 */

#include <gtest/gtest.h>

#include "baseline/offline_detector.hpp"
#include "core/automaton/refinement.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/monitor/timeout_estimator.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/detection_harness.hpp"
#include "eval/timeout_learning.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

// --- TimeoutEstimator ---------------------------------------------------

TEST(TimeoutEstimator, PolicyFromObservedGaps)
{
    TimeoutEstimator estimator;
    estimator.observeRun("boot", {0.0, 1.0, 3.5, 4.0});
    estimator.observeRun("boot", {0.0, 0.5, 1.0, 1.5});
    estimator.observeRun("stop", {0.0, 0.2, 0.4});
    EXPECT_EQ(estimator.runsObserved("boot"), 2u);
    EXPECT_DOUBLE_EQ(estimator.maxGap("boot"), 2.5);
    EXPECT_DOUBLE_EQ(estimator.maxGap("stop"), 0.2);

    TimeoutPolicy policy = estimator.estimate(3.0, 1.0, 10.0);
    EXPECT_DOUBLE_EQ(policy.timeoutFor("boot"), 7.5);
    EXPECT_DOUBLE_EQ(policy.timeoutFor("stop"), 1.0) << "floor applies";
    EXPECT_DOUBLE_EQ(policy.timeoutFor("unknown"), 10.0);
}

TEST(TimeoutEstimator, NegativeGapsClampToZero)
{
    TimeoutEstimator estimator;
    estimator.observeRun("t", {1.0, 0.9, 2.0}); // skewed arrival
    EXPECT_DOUBLE_EQ(estimator.maxGap("t"), 1.1);
}

TEST(TimeoutPolicy, CandidatesTakeTheMostGenerous)
{
    TimeoutPolicy policy;
    policy.defaultTimeout = 10.0;
    policy.perTask = {{"boot", 8.0}, {"stop", 2.0}};
    EXPECT_DOUBLE_EQ(policy.timeoutForCandidates({"stop"}), 2.0);
    EXPECT_DOUBLE_EQ(policy.timeoutForCandidates({"stop", "boot"}), 8.0);
    EXPECT_DOUBLE_EQ(policy.timeoutForCandidates({"stop", "mystery"}),
                     10.0);
    EXPECT_DOUBLE_EQ(policy.timeoutForCandidates({}), 10.0);
}

TEST(TimeoutLearning, PerTaskTimeoutsTrackTaskDuration)
{
    TimeoutPolicy policy = eval::learnTimeoutPolicy(30, 7, 3.0, 1.0);
    ASSERT_EQ(policy.perTask.size(), sim::kTaskTypeCount);
    // Boot has the slowest steps (image creation, hypervisor boot);
    // its learned timeout must exceed a quick task's.
    EXPECT_GT(policy.timeoutFor("boot"), policy.timeoutFor("stop"));
    for (const auto &[task, timeout] : policy.perTask) {
        EXPECT_GT(timeout, 0.5) << task;
        EXPECT_LT(timeout, 60.0) << task;
    }
}

TEST(TimeoutLearning, LearnedPolicyKeepsCleanRunsQuiet)
{
    // A monitor with learned per-task timeouts must not report false
    // timeouts on a clean workload.
    eval::ModelingConfig modeling;
    modeling.minRuns = 40;
    modeling.maxRuns = 150;
    eval::ModeledSystem models = eval::buildModels(modeling);
    TimeoutPolicy policy = eval::learnTimeoutPolicy(40, 7, 3.0, 2.0);

    eval::DatasetConfig dataset;
    dataset.users = 3;
    dataset.tasksPerUser = 10;
    dataset.seed = 17;
    core::MonitorConfig config;
    config.timeoutSeconds = policy.defaultTimeout;
    config.perTaskTimeouts = policy.perTask;
    eval::DatasetResult result =
        eval::runDataset(models, dataset, config);
    EXPECT_EQ(result.acceptedCorrect, result.totalTasks);
    EXPECT_EQ(result.stats.timeoutsReported, 0u);
}

// --- refinement ----------------------------------------------------------

TEST(Refinement, Figure4AtTheModelLevel)
{
    LetterCatalog letters;
    TaskAutomaton original = makeLetterAutomaton(
        letters, "fig4", {"A", "B", "C", "D"},
        {{"A", "B"}, {"B", "C"}, {"C", "D"}});

    // Remove B -> C (events 1 -> 2).
    TaskAutomaton refined = refineAutomaton(original, {{1, 2}});
    EXPECT_EQ(refined.eventCount(), 4u);
    // Weakened: A->B, A->C, B->D, C->D.
    EXPECT_EQ(refined.edgeCount(), 4u);

    // The refined automaton accepts both ABCD and ACBD natively.
    for (const std::vector<const char *> &order :
         {std::vector<const char *>{"A", "B", "C", "D"},
          std::vector<const char *>{"A", "C", "B", "D"}}) {
        AutomatonInstance instance(&refined);
        for (const char *m : order)
            ASSERT_TRUE(instance.consume(letters.id(m)));
        EXPECT_TRUE(instance.accepting());
    }
    // But still rejects C before A.
    AutomatonInstance instance(&refined);
    EXPECT_FALSE(instance.canConsume(letters.id("C")));
}

TEST(Refinement, UnknownEdgesIgnored)
{
    LetterCatalog letters;
    TaskAutomaton original = makeLetterAutomaton(
        letters, "t", {"A", "B"}, {{"A", "B"}});
    TaskAutomaton refined = refineAutomaton(original, {{1, 0}, {5, 9}});
    EXPECT_EQ(refined.edgeCount(), 1u);
}

TEST(Refinement, FromRemovalCountsRespectsThreshold)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> automata;
    automata.push_back(makeLetterAutomaton(
        letters, "t", {"A", "B", "C"}, {{"A", "B"}, {"B", "C"}}));

    RemovalCounts removals;
    removals["t"][{1, 2}] = 2; // B -> C removed twice

    auto unchanged = refineFromRemovals(automata, removals, 3);
    EXPECT_EQ(unchanged[0].edgeCount(), 2u);

    auto refined = refineFromRemovals(automata, removals, 2);
    // B->C removed; weakening yields A->C (plus A->B).
    EXPECT_EQ(refined[0].edgeCount(), 2u);
    AutomatonInstance instance(&refined[0]);
    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_TRUE(instance.consume(letters.id("C")));
    EXPECT_TRUE(instance.consume(letters.id("B")));
    EXPECT_TRUE(instance.accepting());
}

TEST(Refinement, CheckerFeedsTheRefinementLoop)
{
    // Reordered streams teach the checker which dependency is false;
    // the refined automaton then handles the reorder without any
    // recovery.
    LetterCatalog letters;
    TaskAutomaton chain = makeLetterAutomaton(
        letters, "chain", {"A", "B", "C"}, {{"A", "B"}, {"B", "C"}});

    InterleavedChecker checker(CheckerConfig{}, {&chain});
    logging::RecordId rid = 1;
    double t = 0.0;
    // Three reordered sequences A, C, B with distinct identifiers.
    for (int s = 0; s < 3; ++s) {
        std::string id = "seq" + std::to_string(s);
        checker.feed(makeMessage(letters, "A", {id}, rid++, t += 0.1));
        checker.feed(makeMessage(letters, "C", {id}, rid++, t += 0.1));
        checker.feed(makeMessage(letters, "B", {id}, rid++, t += 0.1));
    }
    EXPECT_EQ(checker.stats().recoveredFalseDependency, 3u);
    ASSERT_EQ(checker.dependencyRemovals().count("chain"), 1u);

    std::vector<TaskAutomaton> refined = refineFromRemovals(
        {chain}, checker.dependencyRemovals(), 3);
    InterleavedChecker improved(CheckerConfig{}, {&refined[0]});
    rid = 1;
    t = 0.0;
    improved.feed(makeMessage(letters, "A", {"x"}, rid++, t += 0.1));
    improved.feed(makeMessage(letters, "C", {"x"}, rid++, t += 0.1));
    auto events =
        improved.feed(makeMessage(letters, "B", {"x"}, rid++, t += 0.1));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Accepted);
    EXPECT_EQ(improved.stats().recoveredFalseDependency, 0u)
        << "no recovery needed once the model is refined";
}

// --- offline baseline ----------------------------------------------------

namespace {

std::vector<logging::LogRecord>
syntheticStream(double start, int windows, int per_window,
                const std::string &body, logging::LogLevel level =
                                              logging::LogLevel::Info)
{
    std::vector<logging::LogRecord> out;
    logging::RecordId rid = 1;
    for (int w = 0; w < windows; ++w) {
        for (int i = 0; i < per_window; ++i) {
            logging::LogRecord record;
            record.id = rid++;
            record.timestamp =
                start + w * 10.0 + i * (9.0 / per_window);
            record.node = "controller";
            record.service = "svc";
            record.level = level;
            record.body = body;
            out.push_back(record);
        }
    }
    return out;
}

} // namespace

TEST(OfflineBaseline, QuietOnCleanStreams)
{
    baseline::OfflineDetectorConfig config;
    baseline::OfflineAnomalyDetector detector(config);
    detector.train(syntheticStream(0.0, 20, 5, "steady message"));
    EXPECT_GT(detector.trainingWindows(), 10u);
    auto anomalies =
        detector.analyze(syntheticStream(0.0, 10, 5, "steady message"));
    EXPECT_TRUE(anomalies.empty());
}

TEST(OfflineBaseline, FlagsErrorMessages)
{
    baseline::OfflineDetectorConfig config;
    baseline::OfflineAnomalyDetector detector(config);
    detector.train(syntheticStream(0.0, 20, 5, "steady message"));

    auto stream = syntheticStream(0.0, 10, 5, "steady message");
    stream[27].level = logging::LogLevel::Error;
    auto anomalies = detector.analyze(stream);
    ASSERT_EQ(anomalies.size(), 1u);
    EXPECT_TRUE(anomalies[0].hadError);
}

TEST(OfflineBaseline, FlagsUnseenTemplates)
{
    baseline::OfflineDetectorConfig config;
    baseline::OfflineAnomalyDetector detector(config);
    detector.train(syntheticStream(0.0, 20, 5, "steady message"));

    auto stream = syntheticStream(0.0, 5, 5, "steady message");
    logging::LogRecord odd;
    odd.id = 999;
    odd.timestamp = 12.0;
    odd.node = "controller";
    odd.service = "svc";
    odd.body = "never seen before";
    stream.push_back(odd);
    auto anomalies = detector.analyze(stream);
    ASSERT_EQ(anomalies.size(), 1u);
    EXPECT_TRUE(anomalies[0].hadUnseenTemplate);
}

TEST(OfflineBaseline, FlagsCountDeviations)
{
    baseline::OfflineDetectorConfig config;
    config.minDeviantTemplates = 1;
    baseline::OfflineAnomalyDetector detector(config);
    detector.train(syntheticStream(0.0, 30, 5, "steady message"));

    // One window with 25 copies instead of 5.
    auto stream = syntheticStream(0.0, 3, 5, "steady message");
    auto burst = syntheticStream(30.0, 1, 25, "steady message");
    for (auto &record : burst)
        stream.push_back(record);
    auto anomalies = detector.analyze(stream);
    ASSERT_GE(anomalies.size(), 1u);
    EXPECT_GE(anomalies.back().score, 1.0);
}

TEST(OfflineBaseline, HarnessComparesAgainstCloudSeer)
{
    eval::DetectionConfig config;
    config.point = sim::InjectionPoint::AmqpReceiver;
    config.targetProblems = 4;
    config.seed = 23;
    eval::BaselineResult baseline_result =
        eval::runOfflineBaseline(config);
    // The baseline must at least catch some problems (error windows),
    // and its latency is bounded below by waiting for the stream end.
    EXPECT_GT(baseline_result.stats.truePositives +
                  baseline_result.stats.falseNegatives,
              0u);
    if (baseline_result.detectionLatency.count() > 0) {
        EXPECT_GT(baseline_result.detectionLatency.mean(), 10.0);
    }
}
