/**
 * @file
 * End-to-end tests for the operator CLIs, driven as real child
 * processes (binary paths injected by CMake as compile definitions).
 *
 * The seer_postmortem cases pin the graceful-degradation contract:
 * an empty input or a BUNDLE file truncated mid-record — the classic
 * postmortem artifact, cut short by the very crash it documents —
 * must produce a diagnostic and a nonzero exit, never confidently
 * wrong renderings. The seer_vault cases pin the verify command's
 * exit-code contract over sound, torn, and missing vaults.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/mining/model_io.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "obs/observability.hpp"
#include "obs/profiler.hpp"
#include "obs/pulse.hpp"
#include "test_util.hpp"
#include "vault/vault.hpp"
#include "vault/vaulted_monitor.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

namespace {

/** Exit status and combined stdout+stderr of a shell command. */
struct RunResult
{
    int status = -1;
    std::string output;
};

RunResult
run(const std::string &command)
{
    RunResult result;
    FILE *pipe = popen((command + " 2>&1").c_str(), "r");
    if (pipe == nullptr)
        return result;
    char buffer[512];
    while (fgets(buffer, sizeof buffer, pipe) != nullptr)
        result.output += buffer;
    int raw = pclose(pipe);
    result.status = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
    return result;
}

/** Fresh scratch directory under the system temp root. */
class ToolDir
{
  public:
    explicit ToolDir(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                ("cloudseer_tools_" + name))
                   .string())
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~ToolDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string
    file(const std::string &name) const
    {
        return (std::filesystem::path(path) / name).string();
    }

    const std::string path;
};

/**
 * Produce genuine BUNDLE lines by running a flight-armed monitor
 * through a divergence and a timeout — the same producer the tool is
 * pointed at in the field.
 */
std::string
makeBundleLines()
{
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId ping = catalog->intern("svc-a", "ping <uuid>");
    logging::TemplateId pong = catalog->intern("svc-b", "pong <uuid>");
    std::vector<TaskAutomaton> automata;
    automata.emplace_back(
        "ping-pong", std::vector<EventNode>{{ping, 0}, {pong, 0}},
        std::vector<DependencyEdge>{{0, 1, true}});
    MonitorConfig config;
    config.timeoutSeconds = 10.0;
    config.observability.flightRecorder.perNodeCapacity = 8;
    WorkflowMonitor monitor(config, catalog, std::move(automata));

    const char *uuid1 = "11111111-1111-1111-1111-111111111111";
    const char *uuid2 = "22222222-2222-2222-2222-222222222222";
    logging::RecordId next = 1;
    auto record = [&](const std::string &service,
                      const std::string &body, double t,
                      logging::LogLevel level) {
        logging::LogRecord out;
        out.id = next++;
        out.timestamp = t;
        out.node = "controller";
        out.service = service;
        out.level = level;
        out.body = body;
        return out;
    };
    monitor.feed(record("svc-a", std::string("ping ") + uuid1, 1.0,
                        logging::LogLevel::Info));
    monitor.feed(record("svc-a", std::string("exploded on ") + uuid1,
                        1.5, logging::LogLevel::Error));
    monitor.feed(record("svc-a", std::string("ping ") + uuid2, 2.0,
                        logging::LogLevel::Info));
    monitor.finish();
    return monitor.forensicBundleJsonLines();
}

} // namespace

// --- seer_postmortem ------------------------------------------------

TEST(PostmortemTool, EmptyInputDiagnosesAndFailsNonzero)
{
    ToolDir dir("pm_empty");
    std::string path = dir.file("empty.jsonl");
    std::ofstream(path).close();
    RunResult result =
        run(std::string(SEER_POSTMORTEM_BIN) + " --list " + path);
    EXPECT_NE(result.status, 0);
    EXPECT_NE(result.output.find("empty"), std::string::npos)
        << result.output;
}

TEST(PostmortemTool, TruncatedBundleIsSkippedWithDiagnostic)
{
    std::string bundles = makeBundleLines();
    // Two bundles: the error divergence and the end-of-stream
    // timeout.
    ASSERT_EQ(std::count(bundles.begin(), bundles.end(), '\n'), 2);
    std::size_t cut = bundles.find('\n');
    ASSERT_NE(cut, std::string::npos);

    ToolDir dir("pm_truncated");
    std::string path = dir.file("bundles.jsonl");
    {
        // First record intact, second chopped mid-object — the shape
        // a crashed writer or a filled disk leaves behind.
        std::ofstream out(path);
        out << bundles.substr(0, cut + 1)
            << bundles.substr(cut + 1, 40) << "\n";
    }
    RunResult result =
        run(std::string(SEER_POSTMORTEM_BIN) + " --list " + path);
    EXPECT_NE(result.status, 0);
    EXPECT_NE(result.output.find("truncated"), std::string::npos)
        << result.output;
    // The intact record is still listed (degraded, not refused).
    EXPECT_NE(result.output.find("ERROR"), std::string::npos)
        << result.output;
}

TEST(PostmortemTool, AllRecordsTruncatedIsItsOwnDiagnosis)
{
    ToolDir dir("pm_all_truncated");
    std::string path = dir.file("bundles.jsonl");
    {
        std::ofstream out(path);
        out << "{\"kind\":\"BUNDLE\",\"reason\":\"ERR\n";
        out << "{\"kind\":\"BUNDLE\",\"node\":\"n\n";
    }
    RunResult result =
        run(std::string(SEER_POSTMORTEM_BIN) + " --list " + path);
    EXPECT_NE(result.status, 0);
    EXPECT_NE(result.output.find("every BUNDLE record was truncated"),
              std::string::npos)
        << result.output;
}

TEST(PostmortemTool, IntactInputStillExitsZero)
{
    std::string bundles = makeBundleLines();
    ToolDir dir("pm_intact");
    std::string path = dir.file("bundles.jsonl");
    std::ofstream(path) << bundles;
    RunResult result =
        run(std::string(SEER_POSTMORTEM_BIN) + " --list " + path);
    EXPECT_EQ(result.status, 0) << result.output;
}

// --- seer_stats -----------------------------------------------------

TEST(StatsTool, ShardsViewRendersShardedHealthSamples)
{
    // The genuine producer: a sharded monitor's health sample, with
    // two identifier-disjoint executions routed across two shards.
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId solo = catalog->intern("svc", "solo <uuid>");
    std::vector<TaskAutomaton> automata;
    automata.emplace_back("solo",
                          std::vector<EventNode>{{solo, 0}},
                          std::vector<DependencyEdge>{});
    MonitorConfig config;
    config.ingest.numShards = 2;
    WorkflowMonitor monitor(config, catalog, std::move(automata));
    ASSERT_STREQ(monitor.engineName(), "sharded");

    logging::RecordId next = 1;
    for (const char *uuid :
         {"44444444-4444-4444-4444-444444444444",
          "55555555-5555-5555-5555-555555555555"}) {
        logging::LogRecord record;
        record.id = next;
        record.timestamp = static_cast<double>(next++);
        record.node = "n";
        record.service = "svc";
        record.body = std::string("solo ") + uuid;
        monitor.feed(record);
    }

    ToolDir dir("stats_shards");
    std::string path = dir.file("health.jsonl");
    std::ofstream(path) << monitor.healthSample().toJson() << "\n";

    RunResult result =
        run(std::string(SEER_STATS_BIN) + " --shards " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("sharded engine"), std::string::npos)
        << result.output;
    // One row per shard, both lanes carrying traffic.
    EXPECT_NE(result.output.find("reconciler"), std::string::npos)
        << result.output;
    for (const char *needle : {" 0 ", " 1 "})
        EXPECT_NE(result.output.find(needle), std::string::npos)
            << "missing shard row " << needle << "\n"
            << result.output;

    // A serial sample (no shards section) is refused with a
    // diagnostic, not rendered as an empty table.
    MonitorConfig serial_config;
    std::vector<TaskAutomaton> serial_automata;
    serial_automata.emplace_back(
        "solo", std::vector<EventNode>{{solo, 0}},
        std::vector<DependencyEdge>{});
    WorkflowMonitor serial_monitor(serial_config, catalog,
                                   std::move(serial_automata));
    std::string serial_path = dir.file("serial.jsonl");
    std::ofstream(serial_path)
        << serial_monitor.healthSample().toJson() << "\n";
    RunResult refused =
        run(std::string(SEER_STATS_BIN) + " --shards " + serial_path);
    EXPECT_NE(refused.status, 0) << refused.output;
}

// --- seer_vault -----------------------------------------------------

TEST(VaultTool, VerifyAcceptsSoundVaultAndRejectsTornOne)
{
    ToolDir dir("vault_cli");
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId solo = catalog->intern("svc", "solo <uuid>");
    std::vector<TaskAutomaton> automata;
    automata.emplace_back("solo",
                          std::vector<EventNode>{{solo, 0}},
                          std::vector<DependencyEdge>{});
    vault::VaultConfig vault_config;
    vault_config.directory = dir.path;
    {
        vault::VaultedMonitor vaulted(vault_config, MonitorConfig{},
                                      catalog, std::move(automata));
        logging::LogRecord record;
        record.id = 1;
        record.timestamp = 1.0;
        record.node = "n";
        record.service = "svc";
        record.body =
            "solo 33333333-3333-3333-3333-333333333333";
        vaulted.feed(record);
    }

    std::string bin(SEER_VAULT_BIN);
    RunResult sound = run(bin + " verify " + dir.path);
    EXPECT_EQ(sound.status, 0) << sound.output;
    RunResult inspect = run(bin + " inspect " + dir.path);
    EXPECT_EQ(inspect.status, 0) << inspect.output;
    EXPECT_NE(inspect.output.find("fingerprint"), std::string::npos);

    // A self-diff is clean.
    RunResult same =
        run(bin + " diff " + dir.path + " " + dir.path);
    EXPECT_EQ(same.status, 0) << same.output;

    // Smear garbage over the ledger tail: verify must now fail.
    {
        std::ofstream smear(vault::ledgerPath(dir.path),
                            std::ios::binary | std::ios::app);
        smear << "\x07torn";
    }
    RunResult torn = run(bin + " verify " + dir.path);
    EXPECT_NE(torn.status, 0) << torn.output;
    EXPECT_NE(torn.output.find("torn"), std::string::npos)
        << torn.output;
}

// --- seer_prove ---------------------------------------------------------

namespace {

std::string
goldenPath(const std::string &relative)
{
    return std::string(CLOUDSEER_SOURCE_DIR) + "/" + relative;
}

} // namespace

TEST(SeerProveCli, GoldenBundlesPassTheWerrorGate)
{
    const std::string bin = SEER_PROVE_BIN;
    RunResult gate = run(
        bin + " --werror " + goldenPath("tests/golden/handcrafted.model") +
        " " + goldenPath("tests/golden/mined_tasks.model"));
    EXPECT_EQ(gate.status, 0) << gate.output;
    EXPECT_NE(gate.output.find("certified unambiguous"),
              std::string::npos)
        << gate.output;
    EXPECT_NE(gate.output.find("0 error(s), 0 warning(s)"),
              std::string::npos)
        << gate.output;
}

TEST(SeerProveCli, JsonReportIsGoldenPinned)
{
    const std::string bin = SEER_PROVE_BIN;
    RunResult report = run(
        bin + " --json " + goldenPath("tests/golden/handcrafted.model"));
    EXPECT_EQ(report.status, 0) << report.output;
    EXPECT_NE(report.output.find("\"tool\": \"seer-prove\""),
              std::string::npos)
        << report.output;
    EXPECT_NE(report.output.find("\"errors\": 0"), std::string::npos);
    // All 8 handcrafted signatures are uuid-separated and certify;
    // any drift here is a calibration regression.
    EXPECT_NE(report.output.find("\"certified\": 8"), std::string::npos)
        << report.output;
}

TEST(SeerProveCli, CertificateOutEmbedsAndReloads)
{
    const std::string bin = SEER_PROVE_BIN;
    ToolDir dir("prove_cert");
    std::string out = dir.file("proved.model");
    RunResult embed = run(
        bin + " --certificate-out " + out + " " +
        goldenPath("tests/golden/handcrafted.model"));
    EXPECT_EQ(embed.status, 0) << embed.output;

    std::ifstream proved(out);
    ASSERT_TRUE(proved.good());
    std::string contents((std::istreambuf_iterator<char>(proved)),
                         std::istreambuf_iterator<char>());
    EXPECT_NE(contents.find("certificate "), std::string::npos);
    EXPECT_NE(contents.find("verdict "), std::string::npos);

    // The certified bundle re-analyzes identically.
    RunResult again = run(bin + " --werror " + out);
    EXPECT_EQ(again.status, 0) << again.output;
}

TEST(SeerProveCli, AmbiguousBundleFailsUnderWerror)
{
    // Two tasks sharing an identifier-free template chain: the
    // injected-ambiguity acceptance case, via the CLI gate.
    testutil::LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(testutil::makeLetterAutomaton(
        letters, "alpha", {"S", "T"}, {{"S", "T"}}));
    bundle.push_back(testutil::makeLetterAutomaton(
        letters, "beta", {"S", "T"}, {{"S", "T"}}));
    ToolDir dir("prove_ambig");
    std::string path = dir.file("ambiguous.model");
    {
        std::ofstream out(path);
        saveModels(out, *letters.catalog, bundle, {});
    }

    const std::string bin = SEER_PROVE_BIN;
    RunResult plain = run(bin + " " + path);
    EXPECT_EQ(plain.status, 0) << plain.output;
    EXPECT_NE(plain.output.find("SL020"), std::string::npos)
        << plain.output;
    EXPECT_NE(plain.output.find("SL021"), std::string::npos)
        << plain.output;

    RunResult werror = run(bin + " --werror " + path);
    EXPECT_EQ(werror.status, 1) << werror.output;
}

// The --list/--explain catalog is generated from
// analysis::diagnosticCatalog(), the same table the passes emit from.
// This test is the drift gate: every ID the library can produce must
// be listed and explainable by the CLI, so a new diagnostic that
// forgets the catalog entry (the old SL010 hole) fails here, not in
// an operator's terminal.
TEST(SeerLintCli, CatalogParityWithTheAnalysisLayer)
{
    const std::string bin = SEER_LINT_BIN;
    RunResult list = run(bin + " --list");
    ASSERT_EQ(list.status, 0) << list.output;

    for (const analysis::DiagnosticInfo &info :
         analysis::diagnosticCatalog()) {
        EXPECT_NE(list.output.find(info.id), std::string::npos)
            << "--list is missing " << info.id;

        RunResult explain = run(bin + " --explain " + info.id);
        EXPECT_EQ(explain.status, 0) << info.id << ": " << explain.output;
        EXPECT_NE(explain.output.find(info.title), std::string::npos)
            << "--explain " << info.id << " lost its title";
    }

    // Unknown IDs must stay an error, or typos would pass silently.
    EXPECT_NE(run(bin + " --explain SL999").status, 0);
}

// --- seer_pulse -----------------------------------------------------

namespace {

/** Three HEALTH snapshots that walk shed_burn fire → resolve. */
std::string
makeHealthLines()
{
    obs::HealthSample s0;
    s0.time = 0.0;
    s0.messages = 100;
    obs::HealthSample s1 = s0;
    s1.time = 1.0;
    s1.messages = 200;
    s1.groupsShed = 5; // shed in-window: shed_burn fires immediately
    obs::HealthSample s2 = s1;
    s2.time = 100.0; // the shed ages out of the 60 s window
    s2.messages = 300;
    return s0.toJson() + "\n" + s1.toJson() + "\n" + s2.toJson() +
           "\n";
}

} // namespace

TEST(PulseTool, RulesCheckValidatesAndRejectsWithLineNumbers)
{
    ToolDir dir("pulse_rules");
    std::string good = dir.file("good.rules");
    std::ofstream(good)
        << "# pack\n"
           "rule err signal=error_rate threshold=0.02 pending=30 "
           "hold=60 resolve=0.4\n"
           "rule wal signal=wal_append_p99_us threshold=500 ewma\n";
    const std::string bin = SEER_PULSE_BIN;
    RunResult ok = run(bin + " rules-check " + good);
    EXPECT_EQ(ok.status, 0) << ok.output;
    EXPECT_NE(ok.output.find("2 rules ok"), std::string::npos)
        << ok.output;
    EXPECT_NE(ok.output.find("error_rate"), std::string::npos);
    EXPECT_NE(ok.output.find("(ewma)"), std::string::npos);

    std::string bad = dir.file("bad.rules");
    std::ofstream(bad) << "rule ok signal=error_rate threshold=0.1\n"
                          "rule bad signal=cpu_rate threshold=1\n";
    RunResult rejected = run(bin + " rules-check " + bad);
    EXPECT_EQ(rejected.status, 1) << rejected.output;
    EXPECT_NE(rejected.output.find("line 2"), std::string::npos)
        << rejected.output;

    EXPECT_EQ(run(bin + " rules-check " + dir.file("missing.rules"))
                  .status,
              2);
}

TEST(PulseTool, ReplayRehearsesAlertsOverRecordedHealth)
{
    ToolDir dir("pulse_replay");
    std::string path = dir.file("health.jsonl");
    std::ofstream(path) << makeHealthLines();

    const std::string bin = SEER_PULSE_BIN;
    RunResult result = run(bin + " replay " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("\"kind\":\"ALERT\""),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("\"rule\":\"shed_burn\""),
              std::string::npos);
    EXPECT_NE(result.output.find("\"state\":\"firing\""),
              std::string::npos);
    EXPECT_NE(result.output.find("\"state\":\"resolved\""),
              std::string::npos);
    EXPECT_NE(result.output.find("replayed 3 snapshots, 2 alert"),
              std::string::npos)
        << result.output;

    // A stream with no HEALTH records is a diagnosed failure.
    std::string empty = dir.file("empty.jsonl");
    std::ofstream(empty) << "{\"kind\":\"SUMMARY\"}\n";
    RunResult refused = run(bin + " replay " + empty);
    EXPECT_EQ(refused.status, 1) << refused.output;
    EXPECT_NE(refused.output.find("no HEALTH records"),
              std::string::npos);
}

TEST(PulseTool, ScrapeDiagnosesBadAndUnreachableEndpoints)
{
    const std::string bin = SEER_PULSE_BIN;
    RunResult malformed = run(bin + " scrape not-an-endpoint");
    EXPECT_EQ(malformed.status, 2) << malformed.output;
    EXPECT_NE(malformed.output.find("bad endpoint"),
              std::string::npos);
    // Port 1 is never listening: connect failure, exit 2.
    RunResult unreachable = run(bin + " scrape 127.0.0.1:1");
    EXPECT_EQ(unreachable.status, 2) << unreachable.output;
    EXPECT_NE(unreachable.output.find("cannot reach"),
              std::string::npos);
}

// --- seer_stats × seer_pulse (ALERT interleave) ---------------------

namespace {

/** One genuine ALERT line from the same renderer the monitor uses. */
std::string
makeAlertLine()
{
    obs::AlertRecord rec;
    rec.rule = "shed_burn";
    rec.signal = obs::PulseSignal::ShedRate;
    rec.state = "firing";
    rec.time = 1.0;
    rec.since = 1.0;
    rec.value = 5.0;
    rec.threshold = 0.0;
    return rec.toJson() + "\n";
}

} // namespace

TEST(StatsTool, TableInterleavesAlertCallouts)
{
    ToolDir dir("stats_alerts");
    std::string path = dir.file("stream.jsonl");
    std::ofstream(path) << makeHealthLines() << makeAlertLine();

    RunResult result = run(std::string(SEER_STATS_BIN) + " " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("ALERT firing"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("shed_burn"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("shed_rate=5"), std::string::npos)
        << result.output;
}

TEST(StatsTool, FollowSurfacesAlertsAndHonorsPollLimit)
{
    ToolDir dir("stats_follow");
    std::string path = dir.file("stream.jsonl");
    std::ofstream(path) << makeHealthLines() << makeAlertLine();

    // --poll-limit bounds the tail so the test terminates: the rows
    // already present are printed, then two idle polls end the run.
    RunResult result = run(std::string(SEER_STATS_BIN) +
                           " --follow --poll-limit 2 " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("ALERT firing"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("shed_burn"), std::string::npos);
}

// --- seer_prof --------------------------------------------------------

namespace {

/**
 * A hand-built profile with known shares (check 12, sink 6, untagged
 * 2 of 20 samples → 90% tagged), serialised through the same toJson()
 * every real producer uses — deterministic input for the viewer.
 */
obs::Profile
syntheticProfile(std::uint64_t check, std::uint64_t sink,
                 std::uint64_t untagged)
{
    obs::Profile profile;
    profile.hz = 99;
    profile.durationSeconds = 2.0;
    profile.samples = check + sink + untagged;
    profile.dropped = 1;
    profile.stageSamples[static_cast<std::size_t>(
        obs::ProfStage::Check)] = check;
    profile.stageSamples[static_cast<std::size_t>(
        obs::ProfStage::Sink)] = sink;
    profile.stageSamples[static_cast<std::size_t>(
        obs::ProfStage::None)] = untagged;
    obs::ProfileStack stack;
    stack.stage = obs::ProfStage::Check;
    stack.count = check;
    stack.frames = {"main", "WorkflowMonitor::feed",
                    "InterleavedChecker::feed"};
    profile.stacks.push_back(stack);
    stack = {};
    stack.stage = obs::ProfStage::Sink;
    stack.count = sink;
    stack.frames = {"main", "ingestLoop"};
    profile.stacks.push_back(stack);
    stack = {};
    stack.stage = obs::ProfStage::None;
    stack.count = untagged;
    stack.frames = {"main", "idleWait"};
    profile.stacks.push_back(stack);
    return profile;
}

} // namespace

TEST(ProfTool, TopRendersStageTableAndMinTaggedGate)
{
    ToolDir dir("prof_top");
    std::string path = dir.file("profile.json");
    std::ofstream(path) << syntheticProfile(12, 6, 2).toJson();
    const std::string bin = SEER_PROF_BIN;

    RunResult result = run(bin + " top " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("20 samples at 99 Hz"),
              std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("90.0% tagged"), std::string::npos)
        << result.output;
    // Stage table carries check at 60% and the hottest self frame is
    // the checker's leaf.
    EXPECT_NE(result.output.find("check"), std::string::npos);
    EXPECT_NE(result.output.find("60.0%"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("InterleavedChecker::feed"),
              std::string::npos);

    // The CI gate: 90% tagged clears a 0.85 floor, misses 0.95.
    EXPECT_EQ(run(bin + " top " + path + " --min-tagged 0.85").status,
              0);
    RunResult failed = run(bin + " top " + path + " --min-tagged 0.95");
    EXPECT_EQ(failed.status, 1) << failed.output;
    EXPECT_NE(failed.output.find("FAIL: tagged fraction"),
              std::string::npos)
        << failed.output;

    // Unreadable and non-profile inputs are usage-class failures.
    EXPECT_EQ(run(bin + " top " + dir.file("absent.json")).status, 2);
    std::ofstream(dir.file("other.json")) << "{\"kind\": \"HEALTH\"}";
    EXPECT_EQ(run(bin + " top " + dir.file("other.json")).status, 2);
}

TEST(ProfTool, FoldedMatchesTheProfilesOwnCollapsedForm)
{
    ToolDir dir("prof_folded");
    obs::Profile profile = syntheticProfile(12, 6, 2);
    std::string path = dir.file("profile.json");
    std::ofstream(path) << profile.toJson();

    RunResult result =
        run(std::string(SEER_PROF_BIN) + " folded " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    // The JSON round-trips to exactly the folded text the profile
    // itself renders — one archived artifact regenerates the other.
    EXPECT_EQ(result.output, profile.toFolded());
    EXPECT_NE(result.output.find("[check];main;"), std::string::npos)
        << result.output;
}

TEST(ProfTool, DiffRanksGrownFramesFirstAndRefusesEmptyProfiles)
{
    ToolDir dir("prof_diff");
    std::string base_path = dir.file("base.json");
    std::string fresh_path = dir.file("fresh.json");
    // Check share grows 60% → 80%: the checker frames must top the
    // regression ranking; the shrinking ingest frame must not.
    std::ofstream(base_path) << syntheticProfile(12, 6, 2).toJson();
    std::ofstream(fresh_path) << syntheticProfile(20, 3, 2).toJson();
    const std::string bin = SEER_PROF_BIN;

    RunResult result = run(bin + " diff " + base_path + " " +
                           fresh_path + " --limit 2");
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("base 20 samples vs fresh 25"),
              std::string::npos)
        << result.output;
    std::size_t checker =
        result.output.find("InterleavedChecker::feed");
    ASSERT_NE(checker, std::string::npos) << result.output;
    EXPECT_EQ(result.output.find("ingestLoop"), std::string::npos)
        << result.output;

    std::string empty_path = dir.file("empty.json");
    std::ofstream(empty_path) << syntheticProfile(0, 0, 0).toJson();
    RunResult refused =
        run(bin + " diff " + base_path + " " + empty_path);
    EXPECT_EQ(refused.status, 2) << refused.output;
    EXPECT_NE(refused.output.find("empty profile"), std::string::npos);
}

// --- seer_bench_diff --------------------------------------------------

namespace {

/** A one-level throughput document in the bench's own key layout. */
std::string
benchJson(double indexed_mps, double prove_speedup,
          double obs_overhead, bool with_speedup = true)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(3);
    out << "{\n  \"bench\": \"throughput\",\n  \"levels\": [\n"
        << "    {\"inflight\": 10, \"messages\": 4000,\n"
        << "     \"indexed\": {\"mps\": " << indexed_mps
        << ", \"p50_us\": 0.5, \"p99_us\": 1.2},\n"
        << "     \"obs_overhead\": " << obs_overhead << ",\n";
    if (with_speedup)
        out << "     \"prove_speedup\": " << prove_speedup << ",\n";
    out << "     \"sharded\": [{\"threads\": 2, \"mps\": "
        << indexed_mps * 0.9 << "}]}\n  ]\n}\n";
    return out.str();
}

} // namespace

TEST(BenchDiffTool, CommittedBaselineSelfCompareIsClean)
{
    std::string committed =
        std::string(CLOUDSEER_SOURCE_DIR) + "/BENCH_throughput.json";
    RunResult result = run(std::string(SEER_BENCH_DIFF_BIN) + " " +
                           committed + " " + committed);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("ok: no regressions"),
              std::string::npos)
        << result.output;
}

TEST(BenchDiffTool, SyntheticRegressionTripsAndRatiosOnlyScopes)
{
    ToolDir dir("bench_diff");
    std::string base_path = dir.file("base.json");
    std::string fresh_path = dir.file("fresh.json");
    std::ofstream(base_path) << benchJson(1000000.0, 1.5, 0.05);
    // A 20% throughput drop — past the default 10% band — with the
    // hardware-independent ratios and overheads held steady.
    std::ofstream(fresh_path) << benchJson(800000.0, 1.5, 0.05);
    const std::string bin = SEER_BENCH_DIFF_BIN;

    RunResult tripped = run(bin + " " + base_path + " " + fresh_path);
    EXPECT_EQ(tripped.status, 1) << tripped.output;
    EXPECT_NE(tripped.output.find("indexed.mps"), std::string::npos)
        << tripped.output;
    EXPECT_NE(tripped.output.find("REGRESSED"), std::string::npos);
    EXPECT_NE(tripped.output.find("FAIL:"), std::string::npos);

    // --ratios-only drops the absolute-throughput class (the
    // cross-hardware CI mode), and nothing else regressed here.
    RunResult scoped = run(bin + " --ratios-only " + base_path + " " +
                           fresh_path);
    EXPECT_EQ(scoped.status, 0) << scoped.output;

    // A generous tolerance absorbs the same drop.
    EXPECT_EQ(run(bin + " --tolerance 0.25 " + base_path + " " +
                  fresh_path)
                  .status,
              0);

    // A ratio regression (speedup 1.5 → 1.0) survives --ratios-only.
    std::string slow_path = dir.file("slow.json");
    std::ofstream(slow_path) << benchJson(1000000.0, 1.0, 0.05);
    RunResult ratio = run(bin + " --ratios-only " + base_path + " " +
                          slow_path);
    EXPECT_EQ(ratio.status, 1) << ratio.output;
    EXPECT_NE(ratio.output.find("prove_speedup"), std::string::npos);

    // Overheads gate on an absolute band: +0.15 regresses, +0.05 not.
    std::string heavy_path = dir.file("heavy.json");
    std::ofstream(heavy_path) << benchJson(1000000.0, 1.5, 0.20);
    EXPECT_EQ(run(bin + " " + base_path + " " + heavy_path).status, 1);
    std::string light_path = dir.file("light.json");
    std::ofstream(light_path) << benchJson(1000000.0, 1.5, 0.10);
    EXPECT_EQ(run(bin + " " + base_path + " " + light_path).status, 0);
}

TEST(BenchDiffTool, MetricMissingFromFreshRunIsARegression)
{
    ToolDir dir("bench_diff_missing");
    std::string base_path = dir.file("base.json");
    std::string fresh_path = dir.file("fresh.json");
    std::ofstream(base_path) << benchJson(1000000.0, 1.5, 0.05);
    std::ofstream(fresh_path)
        << benchJson(1000000.0, 1.5, 0.05, /*with_speedup=*/false);
    RunResult result = run(std::string(SEER_BENCH_DIFF_BIN) + " " +
                           base_path + " " + fresh_path);
    EXPECT_EQ(result.status, 1) << result.output;
    EXPECT_NE(result.output.find("MISSING from fresh run"),
              std::string::npos)
        << result.output;

    // --json renders the same verdicts machine-readably.
    RunResult as_json = run(std::string(SEER_BENCH_DIFF_BIN) +
                            " --json " + base_path + " " + fresh_path);
    EXPECT_EQ(as_json.status, 1);
    EXPECT_NE(as_json.output.find("\"kind\": \"BENCH_DIFF\""),
              std::string::npos)
        << as_json.output;
    EXPECT_NE(as_json.output.find("prove_speedup"), std::string::npos);

    // Non-bench input is a usage-class failure, not a verdict.
    std::string bogus_path = dir.file("bogus.json");
    std::ofstream(bogus_path) << "{\"bench\": \"soak\"}";
    EXPECT_EQ(run(std::string(SEER_BENCH_DIFF_BIN) + " " + bogus_path +
                  " " + fresh_path)
                  .status,
              2);
}

// --- idle-stream warnings (seer_stats --follow, seer_pulse watch) -----

TEST(StatsTool, FollowWarnsOnceWhenTheStreamYieldsNothing)
{
    ToolDir dir("stats_idle");
    std::string path = dir.file("stream.jsonl");
    std::ofstream(path) << ""; // a stream that never produces
    // Five idle polls (~1.25 s) cross the one-second warning
    // threshold before --poll-limit ends the run.
    RunResult result = run(std::string(SEER_STATS_BIN) +
                           " --follow --poll-limit 5 " + path);
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("no records from"), std::string::npos)
        << result.output;
    EXPECT_NE(result.output.find("still waiting"), std::string::npos);
}

TEST(PulseTool, WatchWarnsWhenHealthzTimeFreezes)
{
    obs::TelemetryServer server("127.0.0.1", 0);
    ASSERT_TRUE(server.start()) << server.error();
    obs::TelemetryServer::Documents docs;
    // A monitor that answers but never publishes anything new: the
    // snapshot clock is frozen across every poll.
    docs.healthz = "{\"status\":\"ok\",\"time\":42.5,\"firing\":[]}";
    docs.metrics = "seer_up 1\n";
    server.publish(std::move(docs));

    RunResult result =
        run(std::string(SEER_PULSE_BIN) + " watch 127.0.0.1:" +
            std::to_string(server.port()) +
            " --interval 0.05 --count 3");
    server.stop();
    EXPECT_EQ(result.status, 0) << result.output;
    EXPECT_NE(result.output.find("time stuck at 42.5"),
              std::string::npos)
        << result.output;
    // The warning is once-per-stretch, not once-per-poll.
    std::size_t first = result.output.find("time stuck");
    EXPECT_EQ(result.output.find("time stuck", first + 1),
              std::string::npos)
        << result.output;
}
