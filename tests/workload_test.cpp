/**
 * @file
 * Unit and property tests for the workload generator, including
 * parameterized sweeps over the paper's Table 3 axes.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/workload_generator.hpp"

using namespace cloudseer;
using namespace cloudseer::workload;
using sim::TaskType;

TEST(WorkloadGrammar, AcceptsPaperShapes)
{
    EXPECT_TRUE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Delete}));
    EXPECT_TRUE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Stop, TaskType::Start,
         TaskType::Delete}));
    EXPECT_TRUE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Pause, TaskType::Unpause,
         TaskType::Suspend, TaskType::Resume, TaskType::Delete,
         TaskType::Boot, TaskType::Delete}));
}

TEST(WorkloadGrammar, RejectsViolations)
{
    EXPECT_FALSE(matchesWorkloadGrammar({}));
    EXPECT_FALSE(matchesWorkloadGrammar({TaskType::Boot}));
    EXPECT_FALSE(matchesWorkloadGrammar({TaskType::Delete}));
    // Pair halves out of order.
    EXPECT_FALSE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Start, TaskType::Stop,
         TaskType::Delete}));
    // Mixed pair.
    EXPECT_FALSE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Stop, TaskType::Unpause,
         TaskType::Delete}));
    // Group never closed.
    EXPECT_FALSE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Stop, TaskType::Start}));
    // Delete without boot.
    EXPECT_FALSE(matchesWorkloadGrammar(
        {TaskType::Boot, TaskType::Delete, TaskType::Stop,
         TaskType::Start, TaskType::Delete}));
}

TEST(WorkloadGenerator, PlanIsDeterministic)
{
    WorkloadConfig config;
    config.users = 3;
    config.tasksPerUser = 40;
    config.seed = 7;
    WorkloadGenerator generator(config);
    auto a = generator.plan();
    auto b = generator.plan();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].user, b[i].user);
        EXPECT_EQ(a[i].type, b[i].type);
        EXPECT_DOUBLE_EQ(a[i].submitTime, b[i].submitTime);
    }
}

TEST(WorkloadGenerator, SeedsChangeThePlan)
{
    WorkloadConfig config;
    config.users = 2;
    config.tasksPerUser = 40;
    config.seed = 1;
    auto a = WorkloadGenerator(config).plan();
    config.seed = 2;
    auto b = WorkloadGenerator(config).plan();
    bool differs = false;
    for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        differs |= a[i].type != b[i].type;
    EXPECT_TRUE(differs);
}

TEST(WorkloadGenerator, InterTaskWaitRespected)
{
    WorkloadConfig config;
    config.users = 2;
    config.tasksPerUser = 10;
    config.interTaskWait = 15.0;
    config.seed = 3;
    auto plan = WorkloadGenerator(config).plan();
    std::map<int, double> last;
    for (const PlannedTask &task : plan) {
        auto it = last.find(task.user);
        if (it != last.end()) {
            // Jitter is ±1 s around the 15 s wait.
            EXPECT_GE(task.submitTime - it->second, 13.9);
            EXPECT_LE(task.submitTime - it->second, 16.1);
        }
        last[task.user] = task.submitTime;
    }
}

TEST(WorkloadGenerator, SubmitAllRunsEveryTask)
{
    WorkloadConfig config;
    config.users = 2;
    config.tasksPerUser = 12;
    config.seed = 5;
    sim::SimConfig sim_config;
    sim_config.enableNoise = false;
    sim::Simulation simulation(sim_config, 5);
    std::size_t submitted =
        WorkloadGenerator(config).submitAll(simulation);
    simulation.run();
    EXPECT_EQ(submitted, 24u);
    EXPECT_EQ(simulation.truth().executions().size(), 24u);
    for (const sim::ExecutionInfo &info :
         simulation.truth().executions()) {
        EXPECT_TRUE(info.completed)
            << "healthy workload tasks must all complete";
    }
}

TEST(WorkloadGenerator, SingleUidSharesIdentity)
{
    WorkloadConfig config;
    config.users = 3;
    config.tasksPerUser = 4;
    config.singleUid = true;
    config.seed = 6;
    sim::SimConfig sim_config;
    sim_config.enableNoise = false;
    sim::Simulation simulation(sim_config, 6);
    WorkloadGenerator(config).submitAll(simulation);
    simulation.run();
    std::set<std::string> users;
    for (const sim::ExecutionInfo &info :
         simulation.truth().executions()) {
        users.insert(info.userId);
    }
    EXPECT_EQ(users.size(), 1u);
}

TEST(WorkloadGenerator, DistinctUidDiffer)
{
    WorkloadConfig config;
    config.users = 3;
    config.tasksPerUser = 4;
    config.singleUid = false;
    config.seed = 6;
    sim::SimConfig sim_config;
    sim_config.enableNoise = false;
    sim::Simulation simulation(sim_config, 6);
    WorkloadGenerator(config).submitAll(simulation);
    simulation.run();
    std::set<std::string> users;
    for (const sim::ExecutionInfo &info :
         simulation.truth().executions()) {
        users.insert(info.userId);
    }
    EXPECT_EQ(users.size(), 3u);
}

TEST(WorkloadGenerator, BootOpensFreshVm)
{
    WorkloadConfig config;
    config.users = 1;
    config.tasksPerUser = 20;
    config.seed = 8;
    sim::SimConfig sim_config;
    sim_config.enableNoise = false;
    sim::Simulation simulation(sim_config, 8);
    WorkloadGenerator(config).submitAll(simulation);
    simulation.run();

    // Within one boot..delete group, all tasks share the instance;
    // across groups, instances differ.
    std::string current;
    std::set<std::string> instances;
    for (const sim::ExecutionInfo &info :
         simulation.truth().executions()) {
        if (info.type == sim::TaskType::Boot) {
            EXPECT_FALSE(instances.count(info.instanceId))
                << "boot must create a fresh VM identity";
            instances.insert(info.instanceId);
            current = info.instanceId;
        } else {
            EXPECT_EQ(info.instanceId, current);
        }
    }
}

// ---------------------------------------------------------------------
// Property sweep: any (users, tasksPerUser, seed) combination yields
// scripts that match the paper's regular expression exactly.
// ---------------------------------------------------------------------

struct WorkloadParam
{
    int users;
    int tasks;
    std::uint64_t seed;
};

class WorkloadProperty
    : public ::testing::TestWithParam<WorkloadParam>
{
};

TEST_P(WorkloadProperty, PlansHonourGrammarAndCounts)
{
    WorkloadParam param = GetParam();
    WorkloadConfig config;
    config.users = param.users;
    config.tasksPerUser = param.tasks;
    config.seed = param.seed;
    auto plan = WorkloadGenerator(config).plan();
    EXPECT_EQ(plan.size(),
              static_cast<std::size_t>(param.users * param.tasks));

    std::map<int, std::vector<TaskType>> per_user;
    std::map<int, double> last_time;
    for (const PlannedTask &task : plan) {
        per_user[task.user].push_back(task.type);
        auto it = last_time.find(task.user);
        if (it != last_time.end()) {
            EXPECT_GT(task.submitTime, it->second);
        }
        last_time[task.user] = task.submitTime;
    }
    EXPECT_EQ(per_user.size(), static_cast<std::size_t>(param.users));
    for (auto &[user, script] : per_user) {
        EXPECT_EQ(script.size(), static_cast<std::size_t>(param.tasks));
        EXPECT_TRUE(matchesWorkloadGrammar(script));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadProperty,
    ::testing::Values(WorkloadParam{1, 2, 1}, WorkloadParam{1, 80, 2},
                      WorkloadParam{2, 80, 3}, WorkloadParam{3, 80, 4},
                      WorkloadParam{4, 80, 5}, WorkloadParam{4, 40, 6},
                      WorkloadParam{2, 10, 7}, WorkloadParam{8, 16, 8},
                      WorkloadParam{5, 50, 9},
                      WorkloadParam{3, 100, 10}));
