/**
 * @file
 * Tests for seer-probe (DESIGN.md §17): the null-object contract of a
 * disabled profiler (no signal handler, no timer, reports
 * bit-identical with profiling on or off), stage-tagged sampling of a
 * busy loop, the folded/JSON serialisations and their round-trip, the
 * SIGPROF disposition restore on stop, and the live /profilez
 * endpoint on a pulse-enabled monitor.
 *
 * The sampling cases use generous CPU-burn windows and assert
 * presence/dominance rather than exact counts — SIGPROF ticks on
 * process CPU time, and a loaded CI box delivers them unevenly.
 */

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/http_server.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "logging/template_catalog.hpp"
#include "obs/profiler.hpp"

using namespace cloudseer;
using namespace cloudseer::obs;

namespace {

/** Current SIGPROF disposition, for pinning install/restore. */
struct sigaction
sigprofDisposition()
{
    struct sigaction current = {};
    sigaction(SIGPROF, nullptr, &current);
    return current;
}

/** Burn roughly `seconds` of CPU time (not wall clock) so SIGPROF —
 *  which ticks on process CPU — has something to hit. */
void
burnCpu(double seconds)
{
    auto spent = [] {
        timespec ts = {};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               1e-9 * static_cast<double>(ts.tv_nsec);
    };
    double start = spent();
    volatile std::uint64_t sink = 0;
    while (spent() - start < seconds)
        for (int i = 0; i < 10000; ++i)
            sink = sink * 1664525u + 1013904223u;
}

// --- stage scopes ------------------------------------------------------

TEST(StageScopeTest, NestsInnermostWinsAndRestores)
{
    EXPECT_EQ(currentProfStage(), ProfStage::None);
    {
        StageScope outer(ProfStage::Sink);
        EXPECT_EQ(currentProfStage(), ProfStage::Sink);
        {
            StageScope inner(ProfStage::ShardCheck, 3);
            EXPECT_EQ(currentProfStage(), ProfStage::ShardCheck);
            EXPECT_EQ(currentProfShard(), 3u);
        }
        EXPECT_EQ(currentProfStage(), ProfStage::Sink);
        EXPECT_EQ(currentProfShard(), 0u);
    }
    EXPECT_EQ(currentProfStage(), ProfStage::None);
}

TEST(StageScopeTest, StageNamesAreStable)
{
    EXPECT_STREQ(profStageName(ProfStage::None), "untagged");
    EXPECT_STREQ(profStageName(ProfStage::Sink), "sink");
    EXPECT_STREQ(profStageName(ProfStage::Parse), "parse");
    EXPECT_STREQ(profStageName(ProfStage::Route), "route");
    EXPECT_STREQ(profStageName(ProfStage::Check), "check");
    EXPECT_STREQ(profStageName(ProfStage::Verdict), "verdict");
    EXPECT_STREQ(profStageName(ProfStage::ShardCheck), "shard_check");
    EXPECT_STREQ(profStageName(ProfStage::WalAppend), "wal_append");
}

// --- null-object contract ---------------------------------------------

TEST(ProfilerTest, ConstructionInstallsNothing)
{
    struct sigaction before = sigprofDisposition();
    {
        ProfilerConfig config;
        config.enabled = true;
        Profiler profiler(config);
        // Construction allocates the ring only; the disposition must
        // be untouched until start().
        struct sigaction during = sigprofDisposition();
        EXPECT_EQ(during.sa_handler, before.sa_handler);
        EXPECT_FALSE(profiler.running());
    }
    struct sigaction after = sigprofDisposition();
    EXPECT_EQ(after.sa_handler, before.sa_handler);
}

TEST(ProfilerTest, StartInstallsAndStopRestoresDisposition)
{
    struct sigaction before = sigprofDisposition();
    ASSERT_EQ(before.sa_handler, SIG_DFL)
        << "another test left a SIGPROF handler installed";

    ProfilerConfig config;
    config.enabled = true;
    config.hz = 97;
    Profiler profiler(config);
    ASSERT_TRUE(profiler.start());
    EXPECT_TRUE(profiler.running());
    struct sigaction during = sigprofDisposition();
    EXPECT_NE(during.sa_handler, SIG_DFL);

    // A second concurrent profiler must fail cleanly: the SIGPROF
    // disposition is process-global.
    Profiler second(config);
    EXPECT_FALSE(second.start());

    profiler.stop();
    EXPECT_FALSE(profiler.running());
    struct sigaction after = sigprofDisposition();
    EXPECT_EQ(after.sa_handler, SIG_DFL);

    // stop() is idempotent, and the slot is free again.
    profiler.stop();
    ASSERT_TRUE(second.start());
    second.stop();
    EXPECT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
}

TEST(ProfilerTest, DisabledMonitorInstallsNoHandler)
{
    ASSERT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId ping = catalog->intern("svc-a", "ping <uuid>");
    logging::TemplateId pong = catalog->intern("svc-b", "pong <uuid>");
    std::vector<core::TaskAutomaton> automata;
    automata.emplace_back(
        "ping-pong",
        std::vector<core::EventNode>{{ping, 0}, {pong, 0}},
        std::vector<core::DependencyEdge>{{0, 1, true}});
    core::MonitorConfig config; // profiler.enabled defaults to false
    core::WorkflowMonitor monitor(config, catalog,
                                  std::move(automata));
    EXPECT_FALSE(monitor.profilerEnabled());
    EXPECT_EQ(monitor.profiler(), nullptr);

    logging::LogRecord record;
    record.id = 1;
    record.timestamp = 1.0;
    record.node = "n1";
    record.service = "svc-a";
    record.level = logging::LogLevel::Info;
    record.body = "ping 11111111-1111-1111-1111-111111111111";
    monitor.feed(record);
    // Still a null object after traffic: nothing installed.
    EXPECT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
}

// --- on/off differential ----------------------------------------------

/** Run the ping-pong chain plus a divergence through a monitor and
 *  flatten every report to its summary line. */
std::vector<std::string>
reportTrace(bool profiler_on)
{
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId ping = catalog->intern("svc-a", "ping <uuid>");
    logging::TemplateId pong = catalog->intern("svc-b", "pong <uuid>");
    std::vector<core::TaskAutomaton> automata;
    automata.emplace_back(
        "ping-pong",
        std::vector<core::EventNode>{{ping, 0}, {pong, 0}},
        std::vector<core::DependencyEdge>{{0, 1, true}});
    core::MonitorConfig config;
    config.timeoutSeconds = 5.0;
    config.profiler.enabled = profiler_on;
    config.profiler.hz = 997; // sample as hard as we allow
    core::WorkflowMonitor monitor(config, catalog,
                                  std::move(automata));

    std::vector<std::string> trace;
    auto absorb = [&](const std::vector<core::MonitorReport> &batch) {
        for (const core::MonitorReport &report : batch)
            trace.push_back(report.summary(*catalog));
    };
    logging::RecordId next = 1;
    auto feed = [&](const std::string &service,
                    const std::string &body, double t) {
        logging::LogRecord record;
        record.id = next++;
        record.timestamp = t;
        record.node = "n1";
        record.service = service;
        record.level = logging::LogLevel::Info;
        record.body = body;
        absorb(monitor.feed(record));
    };
    // Interleaved completions, one out-of-order pong, one dangling
    // ping that times out at finish() — enough shape to notice any
    // perturbation.
    for (int task = 0; task < 50; ++task) {
        char uuid[64];
        std::snprintf(uuid, sizeof uuid,
                      "%08d-1111-1111-1111-111111111111", task);
        double t = 1.0 + 0.01 * task;
        feed("svc-a", std::string("ping ") + uuid, t);
        if (task % 7 != 6)
            feed("svc-b", std::string("pong ") + uuid, t + 0.001);
        if (profiler_on && task % 16 == 0)
            burnCpu(0.002); // give the timer something to interrupt
    }
    absorb(monitor.finish());
    return trace;
}

TEST(ProfilerTest, ReportsBitIdenticalWithProfilingOnOrOff)
{
    ASSERT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
    std::vector<std::string> off = reportTrace(false);
    std::vector<std::string> on = reportTrace(true);
    EXPECT_FALSE(off.empty());
    EXPECT_EQ(off, on);
    // And the monitor restored the disposition on destruction.
    EXPECT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
}

// --- sampling and serialisation ---------------------------------------

TEST(ProfilerTest, SamplesBusyLoopUnderItsStageTag)
{
    ProfilerConfig config;
    config.enabled = true;
    config.hz = 997;
    Profiler profiler(config);
    ASSERT_TRUE(profiler.start());
    {
        StageScope scope(ProfStage::Check);
        burnCpu(0.3);
    }
    profiler.stop();

    Profile profile = profiler.collect();
    ASSERT_GT(profile.samples, 0u)
        << "no SIGPROF ticks landed in 0.3s of CPU burn";
    EXPECT_EQ(profile.samples, profiler.sampleCount());
    EXPECT_EQ(profile.hz, 997);
    EXPECT_GT(profile.durationSeconds, 0.0);
    auto check_idx =
        static_cast<std::size_t>(ProfStage::Check);
    EXPECT_GT(profile.stageSamples[check_idx], 0u);
    // The burn loop dominates this process's CPU while armed, so the
    // check lane must dominate the profile.
    EXPECT_GT(static_cast<double>(profile.stageSamples[check_idx]),
              0.5 * static_cast<double>(profile.samples));
    EXPECT_GT(profile.taggedFraction(), 0.5);
    EXPECT_FALSE(profile.stacks.empty());

    // Folded output: every line is "frames... count" with the stage
    // lane as the root frame.
    std::string folded = profile.toFolded();
    ASSERT_FALSE(folded.empty());
    EXPECT_NE(folded.find("[check];"), std::string::npos);
    std::string first = folded.substr(0, folded.find('\n'));
    EXPECT_NE(first.find_last_of(' '), std::string::npos);

    // JSON round-trip: parse back what toJson wrote and compare the
    // aggregate fields and the stack multiset.
    Profile parsed;
    ASSERT_TRUE(parseProfileJson(profile.toJson(), parsed));
    EXPECT_EQ(parsed.hz, profile.hz);
    EXPECT_EQ(parsed.samples, profile.samples);
    EXPECT_EQ(parsed.dropped, profile.dropped);
    EXPECT_EQ(parsed.stageSamples, profile.stageSamples);
    EXPECT_EQ(parsed.allocTracked, profile.allocTracked);
    ASSERT_EQ(parsed.stacks.size(), profile.stacks.size());
    for (std::size_t i = 0; i < parsed.stacks.size(); ++i) {
        EXPECT_EQ(parsed.stacks[i].stage, profile.stacks[i].stage);
        EXPECT_EQ(parsed.stacks[i].shard, profile.stacks[i].shard);
        EXPECT_EQ(parsed.stacks[i].count, profile.stacks[i].count);
        EXPECT_EQ(parsed.stacks[i].frames, profile.stacks[i].frames);
    }
    EXPECT_NEAR(parsed.taggedFraction(), profile.taggedFraction(),
                1e-9);
}

TEST(ProfilerTest, ParseRejectsNonProfileDocuments)
{
    Profile out;
    out.hz = 42;
    EXPECT_FALSE(parseProfileJson("", out));
    EXPECT_FALSE(parseProfileJson("{\"kind\": \"HEALTH\"}", out));
    EXPECT_FALSE(parseProfileJson("not json at all", out));
    EXPECT_EQ(out.hz, 42); // untouched on failure
}

TEST(ProfilerTest, AllocTrackingCompiledOutByDefault)
{
    // -DCLOUDSEER_PROFILE_ALLOC=ON flips this (and the JSON's alloc
    // block); the default build must not carry operator-new hooks.
    EXPECT_FALSE(Profiler::allocTrackingCompiledIn());
    ProfilerConfig config;
    config.enabled = true;
    Profiler profiler(config);
    EXPECT_FALSE(profiler.collect().allocTracked);
}

// --- /profilez over real HTTP -----------------------------------------

TEST(ProfilerTest, ProfilezServesLiveProfile)
{
    ASSERT_EQ(sigprofDisposition().sa_handler, SIG_DFL);
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId ping = catalog->intern("svc-a", "ping <uuid>");
    logging::TemplateId pong = catalog->intern("svc-b", "pong <uuid>");
    std::vector<core::TaskAutomaton> automata;
    automata.emplace_back(
        "ping-pong",
        std::vector<core::EventNode>{{ping, 0}, {pong, 0}},
        std::vector<core::DependencyEdge>{{0, 1, true}});
    core::MonitorConfig config;
    config.pulse.enabled = true;
    config.pulse.httpPort = 0; // ephemeral
    core::WorkflowMonitor monitor(config, catalog,
                                  std::move(automata));
    ASSERT_GT(monitor.pulsePort(), 0);

    // No persistent profiler configured: /profilez spins up a
    // transient one for the window, then restores the disposition.
    int status = 0;
    std::string body;
    ASSERT_TRUE(common::httpGet(
        "127.0.0.1", static_cast<std::uint16_t>(monitor.pulsePort()),
        "/profilez?seconds=0.2", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"kind\": \"PROFILE\""), std::string::npos);
    Profile profile;
    EXPECT_TRUE(parseProfileJson(body, profile));
    EXPECT_EQ(sigprofDisposition().sa_handler, SIG_DFL);

    // Unparseable and non-positive windows are client errors.
    ASSERT_TRUE(common::httpGet(
        "127.0.0.1", static_cast<std::uint16_t>(monitor.pulsePort()),
        "/profilez?seconds=banana", status, body));
    EXPECT_EQ(status, 400);
    ASSERT_TRUE(common::httpGet(
        "127.0.0.1", static_cast<std::uint16_t>(monitor.pulsePort()),
        "/profilez?seconds=-1", status, body));
    EXPECT_EQ(status, 400);
}

} // namespace
