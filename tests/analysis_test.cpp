/**
 * @file
 * Tests for the seer-lint static model verifier: every diagnostic ID
 * fires on a deliberately broken model, the golden bundles are clean,
 * the SL005 fan-out bound is validated against a live checker run on
 * a seeded collision model, and the mine-time (TaskModeler verifier)
 * and load-time (WorkflowMonitor) enforcement hooks behave.
 */

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/model_lint.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/mining/model_builder.hpp"
#include "core/mining/model_io.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::analysis::Diagnostic;
using cloudseer::analysis::LintOptions;
using cloudseer::analysis::LintReport;
using cloudseer::analysis::Severity;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Build an automaton with explicit edges (strong flags included). */
TaskAutomaton
rawAutomaton(LetterCatalog &letters, const std::string &name,
             const std::vector<std::string> &nodes,
             const std::vector<DependencyEdge> &edges)
{
    std::vector<EventNode> events;
    for (const std::string &node : nodes)
        events.push_back({letters.id(node), 0});
    return TaskAutomaton(name, std::move(events),
                         std::vector<DependencyEdge>(edges));
}

/** Count findings with the given ID at the given severity. */
std::size_t
countId(const LintReport &report, const std::string &id,
        Severity severity)
{
    std::size_t n = 0;
    for (const Diagnostic *diagnostic : report.withId(id)) {
        if (diagnostic->severity == severity)
            ++n;
    }
    return n;
}

} // namespace

// --- SL001: fork/join balance ------------------------------------------

TEST(SeerLint, SL001DuplicateEdgeIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "dup", {"A", "B"},
        {{0, 1, false}, {0, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL001", Severity::Error), 1u);
    EXPECT_TRUE(report.hasErrors());
}

TEST(SeerLint, SL001PartialJoinIsWarning)
{
    // Fork A -> {B, C, D}; join E merges only B and C; D bypasses to F.
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "partial", {"A", "B", "C", "D", "E", "F"},
        {{0, 1, false},
         {0, 2, false},
         {0, 3, false},
         {1, 4, false},
         {2, 4, false},
         {3, 5, false},
         {4, 5, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL001", Severity::Warning), 1u);
    EXPECT_FALSE(report.hasErrors());

    // The full join F (all three branches converge) is not flagged.
    for (const Diagnostic *diagnostic : report.withId("SL001"))
        EXPECT_EQ(diagnostic->eventB, 4);
}

// --- SL002: dead / orphan / disconnected states ------------------------

TEST(SeerLint, SL002EmptyAutomatonIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton("empty", {}, {});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL002", Severity::Error), 1u);
}

TEST(SeerLint, SL002SelfLoopIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(letters, "selfloop",
                                           {"A", "B"},
                                           {{0, 1, false}, {1, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL002", Severity::Error), 1u);
}

TEST(SeerLint, SL002OrphanEventIsWarning)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(letters, "orphan",
                                           {"A", "B", "C"},
                                           {{0, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL002", Severity::Warning), 1u);
    EXPECT_FALSE(report.hasErrors());
}

TEST(SeerLint, SL002DisconnectedComponentsIsInfo)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "split", {"A", "B", "C", "D"},
        {{0, 1, false}, {2, 3, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL002", Severity::Info), 1u);
}

// --- SL003 / SL009: cycles ---------------------------------------------

TEST(SeerLint, SL003WeakCycleIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "weakcycle", {"A", "B"},
        {{0, 1, true}, {1, 0, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL003", Severity::Error), 1u);
    EXPECT_TRUE(report.withId("SL009").empty());
}

TEST(SeerLint, SL009StrongCycleIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "strongcycle", {"A", "B"},
        {{0, 1, true}, {1, 0, true}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL009", Severity::Error), 1u);
    EXPECT_TRUE(report.withId("SL003").empty());
}

// --- SL004: transitive-reduction violations ----------------------------

TEST(SeerLint, SL004RedundantEdgeIsWarning)
{
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "redundant", {"A", "B", "C"},
        {{0, 1, false}, {1, 2, false}, {0, 2, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    ASSERT_EQ(countId(report, "SL004", Severity::Warning), 1u);
    const Diagnostic *finding = report.withId("SL004").front();
    EXPECT_EQ(finding->eventA, 0);
    EXPECT_EQ(finding->eventB, 2);
    EXPECT_TRUE(finding->isEdge);
}

TEST(SeerLint, SL004SilentInsideCycles)
{
    // Reachability is vacuous in a cycle; the cycle error stands alone.
    LetterCatalog letters;
    TaskAutomaton automaton = rawAutomaton(
        letters, "cycleplus", {"A", "B", "C"},
        {{0, 1, false}, {1, 0, false}, {1, 2, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_TRUE(report.withId("SL004").empty());
    EXPECT_FALSE(report.withId("SL003").empty());
}

// --- SL005: cross-automaton template collisions ------------------------

TEST(SeerLint, SL005CollisionUnderCapIsInfo)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "alpha", {"A", "S"},
                                         {{"A", "S"}}));
    bundle.push_back(makeLetterAutomaton(letters, "beta", {"B", "S"},
                                         {{"B", "S"}}));
    LintOptions options;
    options.maxForkFanout = 6;
    LintReport report = analysis::lintModels(bundle, *letters.catalog,
                                             options);
    ASSERT_EQ(countId(report, "SL005", Severity::Info), 1u);
    const Diagnostic *finding = report.withId("SL005").front();
    EXPECT_EQ(finding->metrics.at("sites"), 2.0);
    EXPECT_EQ(finding->metrics.at("automata"), 2.0);
}

TEST(SeerLint, SL005CollisionOverCapIsWarning)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "alpha", {"A", "S"},
                                         {{"A", "S"}}));
    bundle.push_back(makeLetterAutomaton(letters, "beta", {"B", "S"},
                                         {{"B", "S"}}));
    LintOptions options;
    options.maxForkFanout = 1;
    LintReport report = analysis::lintModels(bundle, *letters.catalog,
                                             options);
    EXPECT_EQ(countId(report, "SL005", Severity::Warning), 1u);
}

/**
 * The acceptance check for the SL005 bound: on a seeded collision
 * model, one shared message forks no more hypotheses than the static
 * per-interleaving site count — and never more than the checker cap.
 */
TEST(SeerLint, SL005StaticBoundHoldsInCheckerRun)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(
        letters, "alpha", {"A", "S", "X"}, {{"A", "S"}, {"S", "X"}}));
    bundle.push_back(makeLetterAutomaton(
        letters, "beta", {"B", "S", "Y"}, {{"B", "S"}, {"S", "Y"}}));

    LintOptions options;
    options.maxForkFanout = kDefaultMaxForkFanout;
    LintReport report = analysis::lintModels(bundle, *letters.catalog,
                                             options);
    ASSERT_FALSE(report.withId("SL005").empty());
    double static_sites =
        report.withId("SL005").front()->metrics.at("sites");

    CheckerConfig config; // deployed defaults, cap included
    InterleavedChecker checker(config,
                               {&bundle[0], &bundle[1]});
    checker.feed(makeMessage(letters, "A", {"idx"}, 1, 1.0));
    checker.feed(makeMessage(letters, "B", {"idy"}, 2, 2.0));
    std::size_t before = checker.activeGroups();

    // The collision: one shared-template message matching both live
    // interleavings (Algorithm 2 case 2 fires).
    checker.feed(makeMessage(letters, "S", {"idx", "idy"}, 3, 3.0));
    std::size_t after = checker.activeGroups();

    EXPECT_GE(checker.stats().ambiguous, 1u);
    std::size_t forked = after - before;
    EXPECT_GE(forked, 1u);
    // Per live interleaving, fan-out is bounded by the site count the
    // lint reported statically; in total, by the checker's cap.
    EXPECT_LE(forked, static_cast<std::size_t>(static_sites));
    EXPECT_LE(forked, config.maxForkFanout);
}

// --- SL006: identifier coverage ----------------------------------------

TEST(SeerLint, SL006UnroutableTemplateIsWarning)
{
    logging::TemplateCatalog catalog;
    std::vector<EventNode> events{
        {catalog.intern("svc", "starting request req-<uuid>"), 0},
        {catalog.intern("svc", "worker pool drained"), 0}};
    TaskAutomaton automaton("coverage", std::move(events),
                            {{0, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton, catalog);
    ASSERT_EQ(countId(report, "SL006", Severity::Warning), 1u);
    EXPECT_EQ(report.withId("SL006").front()->eventA, 1);
}

TEST(SeerLint, SL006NumbersRoutableOnlyWhenConfigured)
{
    logging::TemplateCatalog catalog;
    std::vector<EventNode> events{
        {catalog.intern("svc", "retry attempt <num>"), 0}};
    TaskAutomaton automaton("numbers", std::move(events), {});

    LintReport strict = analysis::lintAutomaton(automaton, catalog);
    EXPECT_EQ(countId(strict, "SL006", Severity::Warning), 1u);

    LintOptions options;
    options.numbersAsIdentifiers = true;
    LintReport relaxed = analysis::lintAutomaton(automaton, catalog,
                                                 options);
    EXPECT_TRUE(relaxed.withId("SL006").empty());
}

// --- SL007: state-signature aliasing -----------------------------------

TEST(SeerLint, SL007DuplicateEventIsError)
{
    LetterCatalog letters;
    std::vector<EventNode> events{{letters.id("A"), 0},
                                  {letters.id("A"), 0}};
    TaskAutomaton automaton("aliased", std::move(events),
                            {{0, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL007", Severity::Error), 1u);
}

TEST(SeerLint, SL007OccurrenceGapIsWarning)
{
    LetterCatalog letters;
    std::vector<EventNode> events{{letters.id("A"), 0},
                                  {letters.id("A"), 2}};
    TaskAutomaton automaton("gapped", std::move(events),
                            {{0, 1, false}});
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog);
    EXPECT_EQ(countId(report, "SL007", Severity::Warning), 1u);
    EXPECT_FALSE(report.hasErrors());
}

TEST(SeerLint, SL007DuplicateTaskNameIsError)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "same", {"A", "B"},
                                         {{"A", "B"}}));
    bundle.push_back(makeLetterAutomaton(letters, "same", {"C", "D"},
                                         {{"C", "D"}}));
    LintReport report = analysis::lintModels(bundle, *letters.catalog);
    EXPECT_EQ(countId(report, "SL007", Severity::Error), 1u);
}

TEST(SeerLint, SL007IndistinguishableAutomataIsWarning)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "first", {"A", "B"},
                                         {{"A", "B"}}));
    bundle.push_back(makeLetterAutomaton(letters, "second", {"A", "B"},
                                         {{"A", "B"}}));
    LintReport report = analysis::lintModels(bundle, *letters.catalog);
    EXPECT_EQ(countId(report, "SL007", Severity::Warning), 1u);
}

// --- SL008: timeout consistency ----------------------------------------

TEST(SeerLint, SL008NonPositiveTimeoutIsError)
{
    LetterCatalog letters;
    TaskAutomaton automaton = makeLetterAutomaton(
        letters, "task", {"A", "B"}, {{"A", "B"}});
    LintOptions options;
    options.defaultTimeout = 0.0;
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog,
                                                options);
    EXPECT_EQ(countId(report, "SL008", Severity::Error), 1u);
}

TEST(SeerLint, SL008TimeoutBelowObservedGapIsWarning)
{
    LetterCatalog letters;
    TaskAutomaton automaton = makeLetterAutomaton(
        letters, "task", {"A", "B"}, {{"A", "B"}});
    LintOptions options;
    options.perTaskTimeouts["task"] = 5.0;
    options.expectedTaskGaps["task"] = 12.5;
    LintReport report = analysis::lintAutomaton(automaton,
                                                *letters.catalog,
                                                options);
    ASSERT_EQ(countId(report, "SL008", Severity::Warning), 1u);
    EXPECT_EQ(report.withId("SL008").front()->metrics.at("max_gap_s"),
              12.5);
}

// --- report plumbing ----------------------------------------------------

TEST(SeerLint, EveryEmittedIdIsInTheCatalog)
{
    // One sweep over a maximally broken bundle; every finding's ID
    // must resolve in the published catalog.
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(rawAutomaton(
        letters, "broken", {"A", "B", "C"},
        {{0, 1, false}, {0, 1, false}, {1, 1, false}, {1, 2, true},
         {2, 1, true}}));
    bundle.push_back(makeLetterAutomaton(letters, "broken", {"D"}, {}));
    LintOptions options;
    options.defaultTimeout = -1.0;
    LintReport report = analysis::lintModels(bundle, *letters.catalog,
                                             options);
    EXPECT_TRUE(report.hasErrors());
    for (const Diagnostic &diagnostic : report.diagnostics)
        EXPECT_NE(analysis::diagnosticInfo(diagnostic.id), nullptr)
            << diagnostic.id;
}

TEST(SeerLint, JsonReportIsWellFormedEnoughForCi)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(rawAutomaton(letters, "dup", {"A", "B"},
                                  {{0, 1, false}, {0, 1, false}}));
    LintReport report = analysis::lintModels(bundle, *letters.catalog);
    std::string json = report.toJson();
    EXPECT_NE(json.find("\"tool\": \"seer-lint\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"id\": \"SL001\""), std::string::npos);
}

TEST(SeerLint, ReportOrderIsDeterministic)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(rawAutomaton(letters, "zeta", {"A", "B"},
                                  {{0, 1, false}, {0, 1, false}}));
    bundle.push_back(rawAutomaton(letters, "alpha", {"C", "C"},
                                  {{0, 1, false}, {1, 1, false}}));
    LintReport once = analysis::lintModels(bundle, *letters.catalog);
    LintReport twice = analysis::lintModels(bundle, *letters.catalog);
    ASSERT_EQ(once.diagnostics.size(), twice.diagnostics.size());
    for (std::size_t i = 0; i < once.diagnostics.size(); ++i) {
        EXPECT_EQ(once.diagnostics[i].id, twice.diagnostics[i].id);
        EXPECT_EQ(once.diagnostics[i].automaton,
                  twice.diagnostics[i].automaton);
    }
    // Sorted: automaton first, then ID.
    for (std::size_t i = 1; i < once.diagnostics.size(); ++i) {
        EXPECT_LE(once.diagnostics[i - 1].automaton,
                  once.diagnostics[i].automaton);
    }
}

// --- mine-time hook (TaskModeler verifier) ------------------------------

TEST(SeerLint, VerifierFlagsBrokenAutomaton)
{
    LetterCatalog letters;
    TaskAutomaton broken = rawAutomaton(letters, "loop", {"A", "B"},
                                        {{0, 1, true}, {1, 0, true}});
    auto verifier = analysis::makeLintVerifier();
    std::vector<std::string> findings =
        verifier(broken, *letters.catalog);
    ASSERT_FALSE(findings.empty());
    EXPECT_NE(findings.front().find("SL009"), std::string::npos);
}

TEST(SeerLint, AttachedModelerReportsCleanMining)
{
    logging::TemplateCatalog catalog;
    TaskModeler modeler(catalog);
    analysis::attachLint(modeler);

    logging::TemplateId a = catalog.intern("svc", "begin <uuid>");
    logging::TemplateId b = catalog.intern("svc", "finish <uuid>");
    std::size_t served = 0;
    auto next_run = [&]() -> TemplateSequence {
        ++served;
        return {a, b};
    };
    TaskModeler::ConvergenceResult result = modeler.modelUntilStable(
        "clean", next_run, /*min_runs=*/4, /*check_every=*/2,
        /*stable_checks=*/2, /*max_runs=*/40);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.lintFindings.empty());
    EXPECT_EQ(result.automaton.eventCount(), 2u);
}

// --- load-time hook (WorkflowMonitor) -----------------------------------

TEST(SeerLintDeathTest, MonitorRefusesBrokenModelOnLoad)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(rawAutomaton(letters, "loop", {"A", "B"},
                                  {{0, 1, true}, {1, 0, true}}));
    MonitorConfig config;
    EXPECT_EXIT(
        {
            WorkflowMonitor monitor(config, letters.catalog,
                                    std::move(bundle));
        },
        testing::ExitedWithCode(1), "seer-lint rejected");
}

TEST(SeerLint, MonitorBypassKeepsReportAvailable)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(rawAutomaton(letters, "loop", {"A", "B"},
                                  {{0, 1, true}, {1, 0, true}}));
    MonitorConfig config;
    config.verifyModelOnLoad = false; // the --no-verify escape hatch
    WorkflowMonitor monitor(config, letters.catalog, std::move(bundle));
    EXPECT_TRUE(monitor.loadLint().hasErrors());
    EXPECT_FALSE(monitor.loadLint().withId("SL009").empty());
}

TEST(SeerLint, MonitorAcceptsCleanModelAndKeepsReport)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "ok", {"A", "B"},
                                         {{"A", "B"}}));
    MonitorConfig config;
    WorkflowMonitor monitor(config, letters.catalog, std::move(bundle));
    EXPECT_FALSE(monitor.loadLint().hasErrors());
    EXPECT_EQ(monitor.loadLint().automataChecked, 1u);
}

// --- golden bundles -----------------------------------------------------

namespace {

LintReport
lintGoldenFile(const std::string &relative)
{
    std::string path =
        std::string(CLOUDSEER_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    auto bundle = loadModels(in);
    EXPECT_TRUE(bundle.has_value()) << "unparseable bundle " << path;
    LintOptions options;
    options.maxForkFanout = kDefaultMaxForkFanout;
    return analysis::lintModels(bundle->automata, *bundle->catalog,
                                options);
}

} // namespace

TEST(SeerLintGolden, HandcraftedBundleIsClean)
{
    LintReport report = lintGoldenFile("tests/golden/handcrafted.model");
    EXPECT_EQ(report.automataChecked, 2u);
    EXPECT_EQ(report.diagnostics.size(), 0u) << report.toText();
}

TEST(SeerLintGolden, MinedBundleHasNoErrors)
{
    LintReport report = lintGoldenFile("tests/golden/mined_tasks.model");
    EXPECT_GE(report.automataChecked, 2u);
    EXPECT_FALSE(report.hasErrors()) << report.toText();
}

TEST(SeerLintGolden, FreshlyMinedModelsHaveNoErrors)
{
    // Mine a small bundle from scratch (reduced scale of the Table 2
    // pipeline) and verify the miner's output is lint-clean.
    logging::TemplateCatalog catalog;
    TaskModeler modeler(catalog);
    logging::TemplateId s1 = catalog.intern("svc", "phase one <uuid>");
    logging::TemplateId s2 = catalog.intern("svc", "phase two <uuid>");
    logging::TemplateId s3 = catalog.intern("svc", "phase three <uuid>");
    std::vector<TemplateSequence> runs(30, {s1, s2, s3});
    TaskAutomaton automaton = modeler.buildAutomaton("pipeline", runs);
    LintReport report = analysis::lintAutomaton(automaton, catalog);
    EXPECT_FALSE(report.hasErrors()) << report.toText();
    EXPECT_TRUE(report.withId("SL004").empty()) << report.toText();
}
