/**
 * @file
 * Tests for the sharded checker (seer-swarm, DESIGN.md §14): targeted
 * checker-level exercises of routing, reconciliation, quiesce and
 * metrics over hand-built letter automata, plus the differential
 * guarantee — a monitor running the sharded engine produces reports
 * bit-identical to the serial engine on clean and transport-perturbed
 * streams, across checkpoint save/restore, with either engine able to
 * restore the other's image.
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "collect/stream_perturber.hpp"
#include "common/binio.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/checker/sharded_checker.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Paper Figure 3 boot automaton over letters. */
TaskAutomaton
bootAutomaton(LetterCatalog &letters)
{
    return makeLetterAutomaton(letters, "boot",
                               {"A", "P", "S", "G", "T", "W"},
                               {{"A", "P"},
                                {"P", "S"},
                                {"S", "G"},
                                {"S", "T"},
                                {"G", "W"},
                                {"T", "W"}});
}

/** Byte-exact fingerprint of everything a check event carries. */
std::string
fingerprint(const CheckEvent &event)
{
    std::string out;
    out += std::to_string(static_cast<int>(event.kind));
    out += '|';
    out += event.taskName;
    out += '|';
    for (const std::string &task : event.candidateTasks) {
        out += task;
        out += ',';
    }
    out += '|';
    for (logging::RecordId record : event.records) {
        out += std::to_string(record);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.frontierTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.expectedTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "|%.9f|", event.time);
    out += time_buf;
    out += std::to_string(event.group);
    return out;
}

std::string
fingerprint(const MonitorReport &report)
{
    return fingerprint(report.event) +
           (report.endOfStream ? "|1" : "|0");
}

void
expectIdenticalEvents(const std::vector<CheckEvent> &sharded,
                      const std::vector<CheckEvent> &serial,
                      const char *where, std::size_t step)
{
    ASSERT_EQ(sharded.size(), serial.size())
        << where << " diverged at step " << step;
    for (std::size_t i = 0; i < sharded.size(); ++i) {
        ASSERT_EQ(fingerprint(sharded[i]), fingerprint(serial[i]))
            << where << " diverged at step " << step << " event " << i;
    }
}

void
expectIdenticalStats(const CheckerStats &a, const CheckerStats &b)
{
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.decisive, b.decisive);
    EXPECT_EQ(a.ambiguous, b.ambiguous);
    EXPECT_EQ(a.recoveredPassUnknown, b.recoveredPassUnknown);
    EXPECT_EQ(a.recoveredNewSequence, b.recoveredNewSequence);
    EXPECT_EQ(a.recoveredOtherSet, b.recoveredOtherSet);
    EXPECT_EQ(a.recoveredFalseDependency, b.recoveredFalseDependency);
    EXPECT_EQ(a.unmatched, b.unmatched);
    EXPECT_EQ(a.errorsReported, b.errorsReported);
    EXPECT_EQ(a.timeoutsReported, b.timeoutsReported);
    EXPECT_EQ(a.timeoutsSuppressed, b.timeoutsSuppressed);
    EXPECT_EQ(a.accepted, b.accepted);
}

/**
 * A deterministic interleaved letter workload: `users` concurrent
 * boot sequences with distinct identifiers, advanced round-robin with
 * a per-user phase offset so the interleavings differ. Some users
 * stall mid-sequence (timeout fodder), one step is identifier-less
 * (ambiguous between every live sequence — the sharded engine must
 * reconcile), and one step names two users' identifiers (a
 * cross-shard bridge).
 */
std::vector<std::pair<CheckMessage, common::SimTime>>
letterWorkload(LetterCatalog &letters, int users)
{
    const std::vector<std::string> path = {"A", "P", "S", "G",
                                           "T", "W"};
    std::vector<std::pair<CheckMessage, common::SimTime>> out;
    logging::RecordId record = 1;
    common::SimTime now = 0.0;
    std::vector<std::size_t> progress(
        static_cast<std::size_t>(users), 0);
    bool bridged = false;
    bool pooled = false;
    for (int round = 0; round < static_cast<int>(path.size()) + 2;
         ++round) {
        for (int user = 0; user < users; ++user) {
            auto u = static_cast<std::size_t>(user);
            // Every third user abandons its run after "S": those
            // groups can only resolve through the timeout sweep.
            if (user % 3 == 2 && progress[u] >= 3)
                continue;
            if (progress[u] >= path.size())
                continue;
            now += 0.05;
            std::string id = "swarm-u" + std::to_string(user);
            std::vector<std::string> ids = {id};
            if (!bridged && round == 2 && user == 1 && users > 1) {
                // Bridge two sequences' identifiers in one message.
                ids.push_back("swarm-u0");
                bridged = true;
            }
            if (!pooled && round == 3 && user == 0) {
                // Identifier-less: ambiguous between all live runs.
                ids.clear();
                pooled = true;
            }
            out.emplace_back(makeMessage(letters, path[progress[u]],
                                         ids, record++, now),
                             now);
            ++progress[u];
        }
    }
    // Park the clock far enough past the default 10 s timeout that a
    // final sweep resolves the abandoned runs.
    out.emplace_back(makeMessage(letters, "A", {"swarm-late"},
                                 record++, now + 15.0),
                     now + 15.0);
    return out;
}

} // namespace

// --- checker-level: pipelined surface ≡ serial --------------------------

TEST(ShardedChecker, SubmitStepMatchesSerialStepForStep)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;

    InterleavedChecker serial(config, {&boot});
    ShardedCheckerConfig swarm;
    swarm.numShards = 3;
    swarm.ringCapacity = 4; // tiny: exercise backpressure + pumping
    ShardedChecker sharded(config, {&boot}, swarm);

    TimeoutPolicy policy;
    sharded.setTimeoutPolicy(policy);
    auto resolver = [&policy](const std::vector<std::string> &tasks) {
        return policy.timeoutForCandidates(tasks);
    };

    auto workload = letterWorkload(letters, 7);
    std::vector<CheckEvent> got;
    for (std::size_t i = 0; i < workload.size(); ++i) {
        const auto &[message, now] = workload[i];
        std::vector<CheckEvent> want =
            serial.sweepTimeouts(now, resolver);
        for (CheckEvent &event : serial.feed(message))
            want.push_back(std::move(event));

        sharded.submitStep(message, now);
        got.clear();
        sharded.flush(got);
        expectIdenticalEvents(got, want, "step", i);
    }
    expectIdenticalStats(sharded.stats(), serial.stats());
    EXPECT_GT(sharded.stats().accepted, 0u);
    EXPECT_GT(sharded.stats().timeoutsReported, 0u);
    EXPECT_GT(sharded.metrics().reconcilerHits, 0u)
        << "workload never exercised the slow path; test is weaker "
           "than intended";
    EXPECT_TRUE(sharded.indexesConsistent());
}

TEST(ShardedChecker, DeepPipelinedSubmitFeedMatchesSerialFeed)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;

    InterleavedChecker serial(config, {&boot});
    ShardedCheckerConfig swarm;
    swarm.numShards = 4;
    swarm.ringCapacity = 8;
    ShardedChecker sharded(config, {&boot}, swarm);

    // The bench fast path: submit everything, flush once. No sweeps,
    // so the serial reference is plain feed() concatenation.
    auto workload = letterWorkload(letters, 11);
    std::vector<CheckEvent> want;
    for (const auto &[message, now] : workload) {
        for (CheckEvent &event : serial.feed(message))
            want.push_back(std::move(event));
    }
    for (const auto &[message, now] : workload)
        sharded.submitFeed(message);
    std::vector<CheckEvent> got;
    sharded.flush(got);
    expectIdenticalEvents(got, want, "pipelined", workload.size());
    expectIdenticalStats(sharded.stats(), serial.stats());

    // Routed messages plus slow-path fallbacks account for the whole
    // stream; nothing is silently dropped.
    std::uint64_t routed = 0;
    for (const auto &shard : sharded.metrics().shards)
        routed += shard.messagesRouted;
    EXPECT_EQ(routed + sharded.metrics().reconcilerHits,
              workload.size());
}

TEST(ShardedChecker, SingleShardDegeneratesToSerial)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;

    InterleavedChecker serial(config, {&boot});
    ShardedCheckerConfig swarm;
    swarm.numShards = 1;
    swarm.ringCapacity = 1; // rendezvous rings still make progress
    ShardedChecker sharded(config, {&boot}, swarm);

    auto workload = letterWorkload(letters, 5);
    std::vector<CheckEvent> want;
    std::vector<CheckEvent> got;
    for (const auto &[message, now] : workload) {
        for (CheckEvent &event : serial.feed(message))
            want.push_back(std::move(event));
        sharded.submitFeed(message);
    }
    sharded.flush(got);
    expectIdenticalEvents(got, want, "one-shard", workload.size());
    expectIdenticalStats(sharded.stats(), serial.stats());
}

TEST(ShardedChecker, ForbidPolicyIsExactOnPartitionableStreams)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;

    InterleavedChecker serial(config, {&boot});
    ShardedCheckerConfig swarm;
    swarm.numShards = 2;
    swarm.reconcilePolicy = ReconcilePolicy::Forbid;
    ShardedChecker sharded(config, {&boot}, swarm);

    // Fully partitionable: every message names exactly one sequence's
    // identifier, so the slow path must never trigger.
    std::vector<CheckEvent> want;
    std::vector<CheckEvent> got;
    logging::RecordId record = 1;
    for (const char *letter : {"A", "P", "S", "G", "T", "W"}) {
        for (int user = 0; user < 4; ++user) {
            CheckMessage message = makeMessage(
                letters, letter,
                {"forbid-u" + std::to_string(user)}, record,
                0.01 * static_cast<double>(record));
            ++record;
            for (CheckEvent &event : serial.feed(message))
                want.push_back(std::move(event));
            sharded.submitFeed(message);
        }
    }
    sharded.flush(got);
    expectIdenticalEvents(got, want, "forbid", 0);
    EXPECT_EQ(sharded.metrics().reconcilerHits, 0u);
    EXPECT_GT(sharded.stats().accepted, 0u);
}

TEST(ShardedChecker, MetricsCountRoutingReconcileAndQuiesce)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    ShardedCheckerConfig swarm;
    swarm.numShards = 2;
    ShardedChecker sharded(CheckerConfig{}, {&boot}, swarm);

    sharded.submitFeed(makeMessage(letters, "A", {"m-1"}, 1, 0.1));
    sharded.submitFeed(makeMessage(letters, "A", {"m-2"}, 2, 0.2));
    // Bridges m-1 and m-2: if their homes differ this is a
    // cross-shard union; either way it lands somewhere legal.
    sharded.submitFeed(
        makeMessage(letters, "P", {"m-1", "m-2"}, 3, 0.3));
    // Identifier-less known template: always the global slow path.
    sharded.submitFeed(makeMessage(letters, "S", {}, 4, 0.4));
    std::vector<CheckEvent> sink;
    sharded.flush(sink);

    const ShardMetrics &m = sharded.metrics();
    ASSERT_EQ(m.shards.size(), 2u);
    EXPECT_GE(m.globalFallbacks, 1u);
    EXPECT_GE(m.reconcilerHits, 1u);
    EXPECT_GE(m.quiesces, 1u); // every reconcile quiesces
    std::uint64_t routed = 0;
    for (const auto &shard : m.shards)
        routed += shard.messagesRouted;
    EXPECT_EQ(routed + m.reconcilerHits, 4u);
    EXPECT_GE(m.imbalance(), 1.0);

    // A checkpoint parks the pipeline too.
    std::uint64_t quiesces_before = m.quiesces;
    common::BinWriter out;
    sharded.saveState(out);
    EXPECT_GT(sharded.metrics().quiesces, quiesces_before);
}

TEST(ShardedChecker, CheckpointImagesInterchangeWithSerial)
{
    LetterCatalog letters;
    TaskAutomaton boot = bootAutomaton(letters);
    CheckerConfig config;

    InterleavedChecker serial(config, {&boot});
    ShardedCheckerConfig swarm;
    swarm.numShards = 3;
    ShardedChecker sharded(config, {&boot}, swarm);

    auto workload = letterWorkload(letters, 9);
    std::size_t half = workload.size() / 2;
    std::vector<CheckEvent> sink;
    for (std::size_t i = 0; i < half; ++i) {
        serial.feed(workload[i].first);
        sharded.submitFeed(workload[i].first);
    }
    sharded.flush(sink);

    // Cross-restore: the serial image into a fresh sharded engine and
    // the sharded image into a fresh serial engine.
    common::BinWriter from_serial;
    serial.saveState(from_serial);
    common::BinWriter from_sharded;
    sharded.saveState(from_sharded);
    EXPECT_EQ(from_serial.bytes(), from_sharded.bytes())
        << "the sharded checkpoint is not the serial image";

    ShardedChecker restored_sharded(config, {&boot}, swarm);
    common::BinReader serial_image(from_serial.bytes());
    ASSERT_TRUE(restored_sharded.restoreState(serial_image));
    InterleavedChecker restored_serial(config, {&boot});
    common::BinReader sharded_image(from_sharded.bytes());
    ASSERT_TRUE(restored_serial.restoreState(sharded_image));

    // All four engines finish the stream in lockstep.
    std::vector<CheckEvent> want;
    std::vector<CheckEvent> want_restored;
    std::vector<CheckEvent> got;
    std::vector<CheckEvent> got_restored;
    for (std::size_t i = half; i < workload.size(); ++i) {
        const CheckMessage &message = workload[i].first;
        for (CheckEvent &event : serial.feed(message))
            want.push_back(std::move(event));
        for (CheckEvent &event : restored_serial.feed(message))
            want_restored.push_back(std::move(event));
        sharded.submitFeed(message);
        restored_sharded.submitFeed(message);
    }
    sharded.flush(got);
    restored_sharded.flush(got_restored);
    expectIdenticalEvents(got, want, "continue", 0);
    expectIdenticalEvents(got_restored, want_restored, "restored", 0);
    expectIdenticalEvents(got_restored, got, "cross", 0);
    expectIdenticalStats(restored_sharded.stats(), serial.stats());
    EXPECT_TRUE(restored_sharded.indexesConsistent());
}

// --- monitor-level differential: sharded ≡ serial -----------------------

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 60;
        config.checkEvery = 20;
        config.stableChecks = 3;
        config.maxRuns = 300;
        return eval::buildModels(config);
    }();
    return system;
}

MonitorConfig
monitorConfigFor(std::size_t num_shards)
{
    MonitorConfig config;
    config.ingest = hardenedIngestDefaults();
    config.ingest.numShards = num_shards;
    config.ingest.shardRingCapacity = 16;
    return config;
}

void
expectIdenticalReports(const std::vector<MonitorReport> &sharded,
                       const std::vector<MonitorReport> &serial,
                       const char *where, std::size_t step)
{
    ASSERT_EQ(sharded.size(), serial.size())
        << where << " diverged at step " << step;
    for (std::size_t i = 0; i < sharded.size(); ++i) {
        ASSERT_EQ(fingerprint(sharded[i]), fingerprint(serial[i]))
            << where << " diverged at step " << step << " report "
            << i;
    }
}

} // namespace

TEST(ShardedMonitorDifferential, EngineSelectionFollowsConfig)
{
    const eval::ModeledSystem &system = models();
    WorkflowMonitor serial(monitorConfigFor(0), system.catalog,
                           system.automataCopy());
    EXPECT_STREQ(serial.engineName(), "serial");
    EXPECT_EQ(serial.shardMetrics(), nullptr);

    WorkflowMonitor sharded(monitorConfigFor(4), system.catalog,
                            system.automataCopy());
    EXPECT_STREQ(sharded.engineName(), "sharded");
    ASSERT_NE(sharded.shardMetrics(), nullptr);
    EXPECT_EQ(sharded.shardMetrics()->shards.size(), 4u);

    // Tracing pins the serial engine (span identity is shard-local).
    MonitorConfig traced = monitorConfigFor(4);
    traced.observability.tracing = true;
    WorkflowMonitor pinned(traced, system.catalog,
                           system.automataCopy());
    EXPECT_STREQ(pinned.engineName(), "serial");
}

TEST(ShardedMonitorDifferential, CleanStreamReportsBitIdentical)
{
    const eval::ModeledSystem &system = models();
    eval::DatasetConfig dataset_config;
    dataset_config.users = 3;
    dataset_config.tasksPerUser = 40;
    dataset_config.seed = 2027;
    eval::GeneratedDataset dataset =
        eval::generateDataset(dataset_config);
    ASSERT_FALSE(dataset.stream.empty());

    WorkflowMonitor sharded(monitorConfigFor(4), system.catalog,
                            system.automataCopy());
    WorkflowMonitor serial(monitorConfigFor(0), system.catalog,
                           system.automataCopy());

    for (std::size_t i = 0; i < dataset.stream.size(); ++i) {
        std::vector<MonitorReport> a = sharded.feed(dataset.stream[i]);
        std::vector<MonitorReport> b = serial.feed(dataset.stream[i]);
        expectIdenticalReports(a, b, "clean-feed", i);
    }
    expectIdenticalReports(sharded.finish(), serial.finish(),
                           "clean-finish", dataset.stream.size());
    expectIdenticalStats(sharded.stats(), serial.stats());
    EXPECT_GT(sharded.stats().accepted, 0u)
        << "workload produced no acceptances; differential is vacuous";
}

TEST(ShardedMonitorDifferential, PerturbedWireStreamsBitIdentical)
{
    // The randomized property: across perturbation seeds, a sharded
    // monitor is indistinguishable from serial on hostile wire
    // streams (drops, dups, truncation, corruption, skew, bursts).
    const eval::ModeledSystem &system = models();
    for (std::uint64_t seed : {99ull, 4242ull, 31337ull}) {
        eval::DatasetConfig dataset_config;
        dataset_config.users = 3;
        dataset_config.tasksPerUser = 20;
        dataset_config.seed = 700 + seed;
        eval::GeneratedDataset dataset =
            eval::generateDataset(dataset_config);

        collect::PerturbationConfig adversity;
        adversity.dropProbability = 0.02;
        adversity.duplicateProbability = 0.02;
        adversity.truncateProbability = 0.005;
        adversity.corruptProbability = 0.005;
        adversity.clockSkewMaxSeconds = 0.05;
        adversity.burstProbability = 0.0005;
        adversity.seed = seed;
        collect::StreamPerturber perturber(adversity);
        collect::PerturbedStream wire = perturber.apply(dataset.stream);
        ASSERT_FALSE(wire.lines.empty());

        std::size_t shard_count = 2 + seed % 3;
        WorkflowMonitor sharded(monitorConfigFor(shard_count),
                                system.catalog, system.automataCopy());
        WorkflowMonitor serial(monitorConfigFor(0), system.catalog,
                               system.automataCopy());

        for (std::size_t i = 0; i < wire.lines.size(); ++i) {
            std::vector<MonitorReport> a =
                sharded.feedLine(wire.lines[i]);
            std::vector<MonitorReport> b =
                serial.feedLine(wire.lines[i]);
            expectIdenticalReports(a, b, "wire-feed", i);
        }
        expectIdenticalReports(sharded.finish(), serial.finish(),
                               "wire-finish", wire.lines.size());
        expectIdenticalStats(sharded.stats(), serial.stats());
    }
}

TEST(ShardedMonitorDifferential, CheckpointInterchangesAcrossEngines)
{
    // seer-vault x seer-swarm: a checkpoint saved by a sharded
    // monitor restores into a serial one (and vice versa), and both
    // finish the stream identically to an uninterrupted serial run.
    const eval::ModeledSystem &system = models();
    eval::DatasetConfig dataset_config;
    dataset_config.users = 2;
    dataset_config.tasksPerUser = 24;
    dataset_config.seed = 555;
    eval::GeneratedDataset dataset =
        eval::generateDataset(dataset_config);
    std::size_t half = dataset.stream.size() / 2;

    WorkflowMonitor sharded(monitorConfigFor(3), system.catalog,
                            system.automataCopy());
    WorkflowMonitor serial(monitorConfigFor(0), system.catalog,
                           system.automataCopy());
    for (std::size_t i = 0; i < half; ++i) {
        std::vector<MonitorReport> a = sharded.feed(dataset.stream[i]);
        std::vector<MonitorReport> b = serial.feed(dataset.stream[i]);
        expectIdenticalReports(a, b, "pre-ckpt", i);
    }

    common::BinWriter from_sharded;
    sharded.saveState(from_sharded);
    common::BinWriter from_serial;
    serial.saveState(from_serial);
    EXPECT_EQ(from_sharded.bytes(), from_serial.bytes())
        << "engine choice leaked into the checkpoint image";

    // Cross-restore into fresh monitors of the *other* engine.
    WorkflowMonitor serial_restored(monitorConfigFor(0), system.catalog,
                                    system.automataCopy());
    common::BinReader sharded_image(from_sharded.bytes());
    ASSERT_TRUE(serial_restored.restoreState(sharded_image));
    WorkflowMonitor sharded_restored(monitorConfigFor(3),
                                     system.catalog,
                                     system.automataCopy());
    common::BinReader serial_image(from_serial.bytes());
    ASSERT_TRUE(sharded_restored.restoreState(serial_image));

    for (std::size_t i = half; i < dataset.stream.size(); ++i) {
        std::vector<MonitorReport> a = sharded.feed(dataset.stream[i]);
        std::vector<MonitorReport> b = serial.feed(dataset.stream[i]);
        std::vector<MonitorReport> c =
            serial_restored.feed(dataset.stream[i]);
        std::vector<MonitorReport> d =
            sharded_restored.feed(dataset.stream[i]);
        expectIdenticalReports(a, b, "post-ckpt-live", i);
        expectIdenticalReports(c, b, "post-ckpt-serial-restored", i);
        expectIdenticalReports(d, b, "post-ckpt-sharded-restored", i);
    }
    std::vector<MonitorReport> fb = serial.finish();
    expectIdenticalReports(sharded.finish(), fb, "fin-live", 0);
    expectIdenticalReports(serial_restored.finish(), fb, "fin-ser", 0);
    expectIdenticalReports(sharded_restored.finish(), fb, "fin-shd", 0);
    expectIdenticalStats(sharded_restored.stats(), serial.stats());
}
