/**
 * @file
 * Unit tests for the logging substrate: variable extraction, template
 * interning, and log-line (de)serialisation.
 */

#include <gtest/gtest.h>

#include "logging/log_codec.hpp"
#include "logging/template_catalog.hpp"
#include "logging/variable_extractor.hpp"

using namespace cloudseer::logging;

namespace {

const VariableExtractor kExtractor;

} // namespace

TEST(LogLevel, NamesRoundTrip)
{
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warning, LogLevel::Error,
                           LogLevel::Critical}) {
        LogLevel parsed;
        ASSERT_TRUE(parseLogLevel(logLevelName(level), parsed));
        EXPECT_EQ(parsed, level);
    }
    LogLevel out;
    EXPECT_FALSE(parseLogLevel("TRACE", out));
    EXPECT_FALSE(parseLogLevel("info", out)); // case-sensitive
}

TEST(LogLevel, ErrorClassification)
{
    EXPECT_TRUE(isErrorLevel(LogLevel::Error));
    EXPECT_TRUE(isErrorLevel(LogLevel::Critical));
    EXPECT_FALSE(isErrorLevel(LogLevel::Warning));
    EXPECT_FALSE(isErrorLevel(LogLevel::Info));
}

TEST(VariableExtractor, ExtractsUuid)
{
    ParsedBody parsed = kExtractor.parse(
        "Scheduling instance 01234567-89ab-cdef-0123-456789abcdef");
    EXPECT_EQ(parsed.templateText, "Scheduling instance <uuid>");
    ASSERT_EQ(parsed.variables.size(), 1u);
    EXPECT_EQ(parsed.variables[0].kind, VariableKind::Uuid);
    EXPECT_EQ(parsed.variables[0].text,
              "01234567-89ab-cdef-0123-456789abcdef");
}

TEST(VariableExtractor, ExtractsIp)
{
    ParsedBody parsed = kExtractor.parse("accepted 10.0.12.34");
    EXPECT_EQ(parsed.templateText, "accepted <ip>");
    ASSERT_EQ(parsed.variables.size(), 1u);
    EXPECT_EQ(parsed.variables[0].kind, VariableKind::Ip);
}

TEST(VariableExtractor, ExtractsNumber)
{
    ParsedBody parsed = kExtractor.parse("status: 202 len: 1748");
    EXPECT_EQ(parsed.templateText, "status: <num> len: <num>");
    ASSERT_EQ(parsed.variables.size(), 2u);
    EXPECT_EQ(parsed.variables[0].text, "202");
    EXPECT_EQ(parsed.variables[1].text, "1748");
}

TEST(VariableExtractor, MixedRealisticLine)
{
    ParsedBody parsed = kExtractor.parse(
        "[req-11111111-2222-3333-4444-555555555555] 10.1.2.3 "
        "\"POST /v2/aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee/servers "
        "HTTP/1.1\" status: 202");
    EXPECT_EQ(parsed.templateText,
              "[req-<uuid>] <ip> \"POST /v2/<uuid>/servers "
              "HTTP/<num>.<num>\" status: <num>");
    // req UUID, client IP, tenant UUID, "1", "1", "202".
    ASSERT_EQ(parsed.variables.size(), 6u);
    EXPECT_EQ(parsed.variables[0].kind, VariableKind::Uuid);
    EXPECT_EQ(parsed.variables[1].kind, VariableKind::Ip);
    EXPECT_EQ(parsed.variables[2].kind, VariableKind::Uuid);
    EXPECT_EQ(parsed.variables[5].text, "202");
}

TEST(VariableExtractor, KeepsWordGluedDigits)
{
    ParsedBody parsed = kExtractor.parse("GET /v2/servers on eth0");
    EXPECT_EQ(parsed.templateText, "GET /v2/servers on eth0");
    EXPECT_TRUE(parsed.variables.empty());
}

TEST(VariableExtractor, HexWordIsNotUuid)
{
    ParsedBody parsed = kExtractor.parse("cafe babe feed");
    EXPECT_EQ(parsed.templateText, "cafe babe feed");
    EXPECT_TRUE(parsed.variables.empty());
}

TEST(VariableExtractor, FiveOctetsIsNotIp)
{
    ParsedBody parsed = kExtractor.parse("path 1.2.3.4.5 end");
    // Falls back to numbers; no IP variable extracted.
    for (const Variable &var : parsed.variables)
        EXPECT_NE(var.kind, VariableKind::Ip);
}

TEST(VariableExtractor, OctetOver255IsNotIp)
{
    ParsedBody parsed = kExtractor.parse("addr 300.1.1.1");
    for (const Variable &var : parsed.variables)
        EXPECT_NE(var.kind, VariableKind::Ip);
}

TEST(VariableExtractor, UuidTailNotReparsed)
{
    // The trailing 12-hex group must not surface as separate numbers.
    ParsedBody parsed = kExtractor.parse(
        "id 01234567-89ab-cdef-0123-456789abcdef end");
    ASSERT_EQ(parsed.variables.size(), 1u);
    EXPECT_EQ(parsed.variables[0].kind, VariableKind::Uuid);
}

TEST(VariableExtractor, IdenticalTemplatesForDifferentValues)
{
    ParsedBody a = kExtractor.parse("Starting instance "
        "01234567-89ab-cdef-0123-456789abcdef");
    ParsedBody b = kExtractor.parse("Starting instance "
        "fedcba98-7654-3210-fedc-ba9876543210");
    EXPECT_EQ(a.templateText, b.templateText);
}

TEST(VariableExtractor, IdentifierExtractionSkipsNumbers)
{
    std::string body = "10.1.2.3 did 42 things to "
                       "01234567-89ab-cdef-0123-456789abcdef";
    auto ids = kExtractor.extractIdentifiers(body);
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], "10.1.2.3");
    auto with_numbers = kExtractor.extractIdentifiers(body, true);
    EXPECT_EQ(with_numbers.size(), 3u);
}

TEST(VariableExtractor, EmptyBody)
{
    ParsedBody parsed = kExtractor.parse("");
    EXPECT_EQ(parsed.templateText, "");
    EXPECT_TRUE(parsed.variables.empty());
}

TEST(TemplateCatalog, InternIsIdempotent)
{
    TemplateCatalog catalog;
    TemplateId a = catalog.intern("nova-api", "Accepted <ip>");
    TemplateId b = catalog.intern("nova-api", "Accepted <ip>");
    EXPECT_EQ(a, b);
    EXPECT_EQ(catalog.size(), 1u);
}

TEST(TemplateCatalog, ServiceDisambiguates)
{
    TemplateCatalog catalog;
    TemplateId a = catalog.intern("nova-api", "same text");
    TemplateId b = catalog.intern("keystone", "same text");
    EXPECT_NE(a, b);
    EXPECT_EQ(catalog.service(a), "nova-api");
    EXPECT_EQ(catalog.service(b), "keystone");
}

TEST(TemplateCatalog, FindWithoutIntern)
{
    TemplateCatalog catalog;
    EXPECT_EQ(catalog.find("svc", "missing"), kInvalidTemplate);
    TemplateId a = catalog.intern("svc", "present");
    EXPECT_EQ(catalog.find("svc", "present"), a);
}

TEST(TemplateCatalog, LabelFormat)
{
    TemplateCatalog catalog;
    TemplateId a = catalog.intern("glance", "GET <uuid>");
    EXPECT_EQ(catalog.label(a), "glance: GET <uuid>");
    EXPECT_EQ(catalog.text(a), "GET <uuid>");
}

TEST(LogCodec, RoundTrip)
{
    LogRecord record;
    record.id = 7;
    record.timestamp = 3661.25;
    record.node = "compute-2";
    record.service = "nova-compute";
    record.level = LogLevel::Info;
    record.body = "Starting instance "
                  "01234567-89ab-cdef-0123-456789abcdef";
    record.truthExecution = 99;
    record.truthTask = "boot";

    std::string line = encodeLogLine(record);
    auto decoded = decodeLogLine(line);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_NEAR(decoded->timestamp, record.timestamp, 0.0015);
    EXPECT_EQ(decoded->node, record.node);
    EXPECT_EQ(decoded->service, record.service);
    EXPECT_EQ(decoded->level, record.level);
    EXPECT_EQ(decoded->body, record.body);
}

TEST(LogCodec, GroundTruthDoesNotSurviveTheWire)
{
    LogRecord record;
    record.timestamp = 1.0;
    record.node = "controller";
    record.service = "nova-api";
    record.level = LogLevel::Error;
    record.body = "boom";
    record.truthExecution = 123;
    record.truthTask = "boot";

    auto decoded = decodeLogLine(encodeLogLine(record));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->truthExecution, 0u);
    EXPECT_TRUE(decoded->truthTask.empty());
}

TEST(LogCodec, RejectsMalformedLines)
{
    EXPECT_FALSE(decodeLogLine("").has_value());
    EXPECT_FALSE(decodeLogLine("garbage").has_value());
    EXPECT_FALSE(decodeLogLine("2016-01-12 00:00:00.000 node").has_value());
    EXPECT_FALSE(
        decodeLogLine("2016-01-12 00:00:00.000 node svc NOPE body")
            .has_value());
    // Missing body.
    EXPECT_FALSE(
        decodeLogLine("2016-01-12 00:00:00.000 node svc INFO")
            .has_value());
}

TEST(LogCodec, BodyMayContainExtraSpaces)
{
    auto decoded = decodeLogLine(
        "2016-01-12 00:00:01.000 controller nova-api INFO a  b   c");
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->body, "a  b   c");
}
