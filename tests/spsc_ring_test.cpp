/**
 * @file
 * Tests for the bounded SPSC ring (seer-swarm, DESIGN.md §14):
 * single-threaded boundary behaviour (full/empty, wrap-around,
 * capacity 1, move-only payloads) and a two-thread stress run that
 * checks lossless in-order transfer under contention.
 */

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/spsc_ring.hpp"

using cloudseer::common::SpscRing;

TEST(SpscRing, StartsEmptyAndReportsCapacity)
{
    SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);

    int out = 0;
    EXPECT_FALSE(ring.tryPop(out));
}

TEST(SpscRing, FillsToCapacityThenRefusesPush)
{
    SpscRing<int> ring(3);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_TRUE(ring.tryPush(3));
    EXPECT_EQ(ring.size(), 3u);

    // Full: the producer is refused, the ring is unchanged.
    EXPECT_FALSE(ring.tryPush(4));
    EXPECT_EQ(ring.size(), 3u);

    // One pop frees exactly one slot.
    int out = 0;
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_FALSE(ring.tryPush(5));
}

TEST(SpscRing, WrapAroundPreservesFifoOrder)
{
    // Drive the free-running counters far past several wraps of a
    // small ring; order and content must survive every wrap.
    SpscRing<int> ring(4);
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        // Vary the in-flight depth so head/tail hit every phase of
        // the modulo cycle, including completely full and empty.
        int burst = 1 + round % 4;
        for (int i = 0; i < burst; ++i)
            ASSERT_TRUE(ring.tryPush(int(next_in++)));
        int out = -1;
        for (int i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            ASSERT_EQ(out, next_out++);
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, CapacityOneAlternatesStrictly)
{
    // capacity 1 is the degenerate rendezvous: exactly one item can
    // ever be in flight, so push and pop must alternate strictly.
    SpscRing<int> ring(1);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(ring.tryPush(int(i)));
        ASSERT_FALSE(ring.tryPush(int(i + 100)));
        int out = -1;
        ASSERT_TRUE(ring.tryPop(out));
        ASSERT_EQ(out, i);
        ASSERT_FALSE(ring.tryPop(out));
    }
}

TEST(SpscRing, MoveOnlyPayloadsTransferOwnership)
{
    // The sharded checker ships work items holding vectors; the ring
    // must move, never copy. unique_ptr makes a copy a compile error
    // and a double-delete a loud failure under sanitizers.
    SpscRing<std::unique_ptr<int>> ring(2);
    ASSERT_TRUE(ring.tryPush(std::make_unique<int>(7)));
    ASSERT_TRUE(ring.tryPush(std::make_unique<int>(8)));

    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 7);
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(*out, 8);
}

TEST(SpscRing, BlockingPushPopMeetAcrossThreads)
{
    // Blocking push against a deliberately slow consumer: the
    // producer must apply backpressure (yield) rather than drop or
    // overwrite.
    SpscRing<std::uint64_t> ring(2);
    constexpr std::uint64_t kCount = 10000;

    std::thread consumer([&ring] {
        std::uint64_t expected = 0;
        std::uint64_t out = 0;
        while (expected < kCount) {
            ring.pop(out);
            ASSERT_EQ(out, expected);
            ++expected;
        }
    });
    for (std::uint64_t i = 0; i < kCount; ++i)
        ring.push(std::uint64_t(i));
    consumer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStressIsLosslessAndOrdered)
{
    // The real workload shape: bursts of tryPush with a yielding
    // fallback on one side, opportunistic tryPop draining on the
    // other. Every item must arrive exactly once, in order — this is
    // the test the CI ThreadSanitizer job leans on.
    SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kCount = 200000;
    std::vector<std::uint64_t> received;
    received.reserve(kCount);

    std::thread consumer([&ring, &received] {
        std::uint64_t out = 0;
        while (received.size() < kCount) {
            if (ring.tryPop(out))
                received.push_back(out);
            else
                std::this_thread::yield();
        }
    });
    for (std::uint64_t i = 0; i < kCount; ++i) {
        while (!ring.tryPush(std::uint64_t(i)))
            std::this_thread::yield();
    }
    consumer.join();

    ASSERT_EQ(received.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i)
        ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
}
