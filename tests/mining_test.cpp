/**
 * @file
 * Unit and property tests for the offline modeling pipeline:
 * preprocessing (key-message filter), temporal-dependency mining,
 * transitive reduction, and the convergence-driven model builder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/mining/dependency_miner.hpp"
#include "core/mining/model_builder.hpp"
#include "core/mining/preprocessor.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;

namespace {

/** Shorthand: build sequences over letters via one shared catalog. */
struct SequenceBuilder
{
    LetterCatalog letters;

    TemplateSequence
    seq(const std::string &compact)
    {
        TemplateSequence out;
        for (char c : compact)
            out.push_back(letters.id(std::string(1, c)));
        return out;
    }
};

/** Map event id by (letter, occurrence) for assertions. */
int
eventOf(const MinedModel &model, LetterCatalog &letters,
        const std::string &letter, int occurrence = 0)
{
    logging::TemplateId tpl = letters.id(letter);
    for (std::size_t i = 0; i < model.events.size(); ++i) {
        if (model.events[i].tpl == tpl &&
            model.events[i].occurrence == occurrence) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

bool
hasEdge(const MinedModel &model, int from, int to)
{
    for (const DependencyEdge &edge : model.edges) {
        if (edge.from == from && edge.to == to)
            return true;
    }
    return false;
}

} // namespace

TEST(Preprocessor, KeepsStableTemplates)
{
    SequenceBuilder b;
    auto result = preprocessSequences({b.seq("ABC"), b.seq("ABC")});
    EXPECT_EQ(result.keyTemplates.size(), 3u);
    EXPECT_TRUE(result.droppedTemplates.empty());
    for (const TemplateSequence &seq : result.sequences)
        EXPECT_EQ(seq.size(), 3u);
}

TEST(Preprocessor, DropsVariableCountTemplates)
{
    SequenceBuilder b;
    // X appears 1, 2, 0 times across runs -> dropped.
    auto result = preprocessSequences(
        {b.seq("AXBC"), b.seq("AXXBC"), b.seq("ABC")});
    EXPECT_EQ(result.keyTemplates.size(), 3u);
    ASSERT_EQ(result.droppedTemplates.size(), 1u);
    EXPECT_EQ(result.droppedTemplates[0], b.letters.id("X"));
    for (const TemplateSequence &seq : result.sequences)
        EXPECT_EQ(seq.size(), 3u);
}

TEST(Preprocessor, KeepsRepeatedTemplateWithStableCount)
{
    SequenceBuilder b;
    // A appears exactly twice in every run: kept, both occurrences.
    auto result = preprocessSequences({b.seq("ABA"), b.seq("AAB")});
    auto key_a = std::find_if(
        result.keyTemplates.begin(), result.keyTemplates.end(),
        [&](auto &kv) { return kv.first == b.letters.id("A"); });
    ASSERT_NE(key_a, result.keyTemplates.end());
    EXPECT_EQ(key_a->second, 2);
}

TEST(Preprocessor, TemplateMissingFromOneRunIsDropped)
{
    SequenceBuilder b;
    auto result = preprocessSequences({b.seq("ABC"), b.seq("AC")});
    EXPECT_EQ(result.keyTemplates.size(), 2u);
    ASSERT_EQ(result.droppedTemplates.size(), 1u);
    EXPECT_EQ(result.droppedTemplates[0], b.letters.id("B"));
}

TEST(Preprocessor, SingleRunKeepsEverything)
{
    SequenceBuilder b;
    auto result = preprocessSequences({b.seq("AXBYC")});
    EXPECT_EQ(result.keyTemplates.size(), 5u);
}

TEST(TransitiveReduction, RemovesImpliedEdges)
{
    // a->b, b->c, a->c: the last is implied.
    auto reduced = transitiveReduction(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_EQ(reduced.size(), 2u);
    EXPECT_TRUE(std::count(reduced.begin(), reduced.end(),
                           std::make_pair(0, 1)));
    EXPECT_TRUE(std::count(reduced.begin(), reduced.end(),
                           std::make_pair(1, 2)));
}

TEST(TransitiveReduction, KeepsDiamond)
{
    // 0->1, 0->2, 1->3, 2->3 (+ closure 0->3): diamond stays intact.
    auto reduced = transitiveReduction(
        4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}});
    EXPECT_EQ(reduced.size(), 4u);
    EXPECT_FALSE(std::count(reduced.begin(), reduced.end(),
                            std::make_pair(0, 3)));
}

TEST(TransitiveReduction, EmptyAndSingleton)
{
    EXPECT_TRUE(transitiveReduction(0, {}).empty());
    EXPECT_TRUE(transitiveReduction(3, {}).empty());
}

// Property: reduction preserves the transitive closure and is minimal.
class TransitiveReductionProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static std::vector<std::vector<char>>
    closureOf(int n, const std::vector<std::pair<int, int>> &edges)
    {
        std::vector<std::vector<char>> reach(
            static_cast<std::size_t>(n),
            std::vector<char>(static_cast<std::size_t>(n), 0));
        for (auto [a, b] : edges)
            reach[static_cast<std::size_t>(a)]
                 [static_cast<std::size_t>(b)] = 1;
        for (int k = 0; k < n; ++k)
            for (int i = 0; i < n; ++i)
                for (int j = 0; j < n; ++j)
                    if (reach[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(k)] &&
                        reach[static_cast<std::size_t>(k)]
                             [static_cast<std::size_t>(j)])
                        reach[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(j)] = 1;
        return reach;
    }
};

TEST_P(TransitiveReductionProperty, ClosurePreservedAndMinimal)
{
    common::Rng rng(GetParam());
    int n = rng.uniformInt(3, 12);
    // Random DAG: edges only from lower to higher index.
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n; ++a)
        for (int b = a + 1; b < n; ++b)
            if (rng.chance(0.4))
                edges.emplace_back(a, b);

    auto reduced = transitiveReduction(n, edges);
    EXPECT_EQ(closureOf(n, reduced), closureOf(n, edges));

    // Minimality: removing any reduced edge loses reachability.
    auto full = closureOf(n, edges);
    for (std::size_t skip = 0; skip < reduced.size(); ++skip) {
        std::vector<std::pair<int, int>> fewer;
        for (std::size_t i = 0; i < reduced.size(); ++i)
            if (i != skip)
                fewer.push_back(reduced[i]);
        EXPECT_NE(closureOf(n, fewer), full);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, TransitiveReductionProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(DependencyMiner, LinearChain)
{
    SequenceBuilder b;
    MinedModel model = mineDependencies({b.seq("ABC"), b.seq("ABC")});
    ASSERT_EQ(model.events.size(), 3u);
    EXPECT_EQ(model.edges.size(), 2u);
    int a = eventOf(model, b.letters, "A");
    int bb = eventOf(model, b.letters, "B");
    int c = eventOf(model, b.letters, "C");
    EXPECT_TRUE(hasEdge(model, a, bb));
    EXPECT_TRUE(hasEdge(model, bb, c));
    for (const DependencyEdge &edge : model.edges)
        EXPECT_TRUE(edge.strong) << "chain edges are always adjacent";
}

TEST(DependencyMiner, ForkJoinFromInterleavings)
{
    // The paper's §3.2 example: scheduling always precedes GET and
    // Starting, but those two have no mutual order.
    SequenceBuilder b;
    MinedModel model =
        mineDependencies({b.seq("SGTX"), b.seq("STGX")});
    int s = eventOf(model, b.letters, "S");
    int g = eventOf(model, b.letters, "G");
    int t = eventOf(model, b.letters, "T");
    int x = eventOf(model, b.letters, "X");
    EXPECT_TRUE(hasEdge(model, s, g));
    EXPECT_TRUE(hasEdge(model, s, t));
    EXPECT_TRUE(hasEdge(model, g, x));
    EXPECT_TRUE(hasEdge(model, t, x));
    EXPECT_FALSE(hasEdge(model, g, t));
    EXPECT_FALSE(hasEdge(model, t, g));
    EXPECT_EQ(model.edges.size(), 4u);
}

TEST(DependencyMiner, WeakEdgesAreNotStrong)
{
    SequenceBuilder b;
    MinedModel model =
        mineDependencies({b.seq("SGTX"), b.seq("STGX")});
    int s = eventOf(model, b.letters, "S");
    int g = eventOf(model, b.letters, "G");
    for (const DependencyEdge &edge : model.edges) {
        if (edge.from == s && edge.to == g) {
            // S -> G is immediate in one run but not the other.
            EXPECT_FALSE(edge.strong);
        }
    }
}

TEST(DependencyMiner, RepeatedTemplateOccurrences)
{
    SequenceBuilder b;
    // A happens twice with B in between, consistently.
    MinedModel model = mineDependencies({b.seq("ABA"), b.seq("ABA")});
    ASSERT_EQ(model.events.size(), 3u);
    int a0 = eventOf(model, b.letters, "A", 0);
    int a1 = eventOf(model, b.letters, "A", 1);
    int bb = eventOf(model, b.letters, "B", 0);
    ASSERT_NE(a0, -1);
    ASSERT_NE(a1, -1);
    EXPECT_TRUE(hasEdge(model, a0, bb));
    EXPECT_TRUE(hasEdge(model, bb, a1));
}

TEST(DependencyMiner, FullyConcurrentPair)
{
    SequenceBuilder b;
    MinedModel model = mineDependencies({b.seq("AB"), b.seq("BA")});
    EXPECT_TRUE(model.edges.empty());
}

TEST(DependencyMiner, FullOrderContainsTransitivePairs)
{
    SequenceBuilder b;
    MinedModel model = mineDependencies({b.seq("ABC")});
    // (A,C) is in the full order but reduced out of the edges.
    EXPECT_EQ(model.fullOrder.size(), 3u);
    EXPECT_EQ(model.edges.size(), 2u);
}

TEST(ModelBuilder, EndToEndFromSequences)
{
    SequenceBuilder b;
    logging::TemplateCatalog &catalog = *b.letters.catalog;
    TaskModeler modeler(catalog);
    // Noise template N with unstable counts is filtered before mining.
    TaskAutomaton automaton = modeler.buildAutomaton(
        "demo", {b.seq("ANBC"), b.seq("ABNNC"), b.seq("ABC")});
    EXPECT_EQ(automaton.eventCount(), 3u);
    EXPECT_EQ(automaton.edgeCount(), 2u);
    EXPECT_EQ(automaton.name(), "demo");
    EXPECT_FALSE(automaton.containsTemplate(b.letters.id("N")));
}

TEST(ModelBuilder, ToTemplateSequenceInternsInOrder)
{
    logging::TemplateCatalog catalog;
    TaskModeler modeler(catalog);
    std::vector<logging::LogRecord> records(2);
    records[0].service = "nova-api";
    records[0].body = "Accepted request from 10.1.2.3";
    records[1].service = "nova-compute";
    records[1].body = "Starting instance "
                      "01234567-89ab-cdef-0123-456789abcdef";
    TemplateSequence seq = modeler.toTemplateSequence(records);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(catalog.text(seq[0]), "Accepted request from <ip>");
    EXPECT_EQ(catalog.text(seq[1]), "Starting instance <uuid>");
}

TEST(ModelBuilder, ConvergenceStopsWhenStable)
{
    SequenceBuilder b;
    TaskModeler modeler(*b.letters.catalog);
    // Alternate the two interleavings of a fork; the automaton
    // stabilises once both have been seen.
    int calls = 0;
    auto next = [&]() {
        ++calls;
        return calls % 2 == 0 ? b.seq("SGTX") : b.seq("STGX");
    };
    auto result = modeler.modelUntilStable("demo", next, 4, 2, 3, 200);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.runsUsed, 40u);
    EXPECT_EQ(result.automaton.eventCount(), 4u);
    EXPECT_EQ(result.automaton.edgeCount(), 4u);
}

TEST(ModelBuilder, CapReachedReportsNotConverged)
{
    SequenceBuilder b;
    TaskModeler modeler(*b.letters.catalog);
    // A "new behaviour" every run: never converges within the cap.
    int calls = 0;
    common::Rng rng(3);
    auto next = [&]() {
        ++calls;
        // Random shuffle of 5 concurrent letters: order keeps changing.
        std::string base = "ABCDE";
        std::shuffle(base.begin(), base.end(), rng.raw());
        return b.seq(base);
    };
    auto result = modeler.modelUntilStable("demo", next, 4, 2, 50, 30);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.runsUsed, 30u);
}

TEST(ModelBuilder, MoreRunsNeverAddEdges)
{
    // Property: dependencies only weaken as evidence accumulates.
    SequenceBuilder b;
    TaskModeler modeler(*b.letters.catalog);
    std::vector<TemplateSequence> runs = {b.seq("ABCD")};
    TaskAutomaton first = modeler.buildAutomaton("m", runs);
    runs.push_back(b.seq("ACBD"));
    TaskAutomaton second = modeler.buildAutomaton("m", runs);
    runs.push_back(b.seq("ABDC"));
    TaskAutomaton third = modeler.buildAutomaton("m", runs);
    // Full order size shrinks (or stays) as interleavings appear.
    EXPECT_GE(first.edgeCount(), 3u);
    EXPECT_LE(third.eventCount(), first.eventCount());
}
