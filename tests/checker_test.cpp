/**
 * @file
 * Unit tests for the online checking stage: identifier sets,
 * automaton groups (Algorithm 1), and the interleaved checker
 * (Algorithm 2) with its recovery heuristics and detection criteria.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/checker/interleaved_checker.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Paper Figure 3 boot automaton over letters. */
TaskAutomaton
bootAutomaton(LetterCatalog &letters)
{
    return makeLetterAutomaton(letters, "boot",
                               {"A", "P", "S", "G", "T", "W"},
                               {{"A", "P"},
                                {"P", "S"},
                                {"S", "G"},
                                {"S", "T"},
                                {"G", "W"},
                                {"T", "W"}});
}

} // namespace

// --- IdentifierSet ----------------------------------------------------

TEST(IdentifierSet, OverlapCountsDistinctShared)
{
    auto ids = cloudseer::testutil::internIds;
    IdentifierSet set(ids({"a", "b", "c"}));
    auto view = [&](const std::vector<std::string> &raw) {
        return IdentifierSet::dedupSorted(ids(raw));
    };
    EXPECT_EQ(set.overlap(view({"a"})), 1);
    EXPECT_EQ(set.overlap(view({"a", "b"})), 2);
    EXPECT_EQ(set.overlap(view({"x", "y"})), 0);
    EXPECT_EQ(set.overlap(view({"a", "a", "a"})), 1)
        << "duplicates count once";
    EXPECT_EQ(set.overlap(view({})), 0);
}

TEST(IdentifierSet, SymmetricDifference)
{
    auto ids = cloudseer::testutil::internIds;
    IdentifierSet set(ids({"a", "b", "c"}));
    auto view = [&](const std::vector<std::string> &raw) {
        return IdentifierSet::dedupSorted(ids(raw));
    };
    EXPECT_EQ(set.symmetricDifference(view({"a"})), 2);      // {b,c}
    EXPECT_EQ(set.symmetricDifference(view({"a", "b", "c"})), 0);
    EXPECT_EQ(set.symmetricDifference(view({"x"})), 4);      // {a,b,c}+{x}
    EXPECT_EQ(set.symmetricDifference(view({"a", "x"})), 3); // {b,c}+{x}
}

TEST(IdentifierSet, InsertAndUnionDeduplicate)
{
    auto ids = cloudseer::testutil::internIds;
    IdentifierSet set(ids({"b", "a"}));
    set.insert(IdentifierSet::dedupSorted(ids({"a", "c"})));
    EXPECT_EQ(set.size(), 3u);
    IdentifierSet other(ids({"c", "d"}));
    set.unionWith(other);
    EXPECT_EQ(set.size(), 4u);
    EXPECT_TRUE(set.contains(ids({"d"}).front()));
    std::vector<logging::IdToken> expected = ids({"a", "b", "c", "d"});
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(set.values(), expected);
}

// --- AutomatonGroup (Algorithm 1) --------------------------------------

TEST(AutomatonGroup, NarrowsToConsumingInstances)
{
    LetterCatalog letters;
    TaskAutomaton x = makeLetterAutomaton(letters, "x", {"A", "B"},
                                          {{"A", "B"}});
    TaskAutomaton y = makeLetterAutomaton(letters, "y", {"A", "C"},
                                          {{"A", "C"}});
    AutomatonGroup group(1, {&x, &y});
    EXPECT_EQ(group.instances().size(), 2u);

    ASSERT_TRUE(group.consume(letters.id("A"), 1, 0.0));
    EXPECT_EQ(group.instances().size(), 2u) << "both tasks fit so far";

    ASSERT_TRUE(group.consume(letters.id("B"), 2, 0.1));
    ASSERT_EQ(group.instances().size(), 1u);
    EXPECT_EQ(group.instances()[0].automaton().name(), "x");
    ASSERT_NE(group.acceptingInstance(), nullptr);
    EXPECT_EQ(group.acceptingInstance()->automaton().name(), "x");
}

TEST(AutomatonGroup, DivergenceLeavesGroupUntouched)
{
    LetterCatalog letters;
    TaskAutomaton x = makeLetterAutomaton(letters, "x", {"A", "B"},
                                          {{"A", "B"}});
    AutomatonGroup group(1, {&x});
    ASSERT_TRUE(group.consume(letters.id("A"), 1, 0.0));
    EXPECT_FALSE(group.consume(letters.id("C"), 2, 0.1));
    EXPECT_EQ(group.history().size(), 1u);
    EXPECT_EQ(group.instances().size(), 1u);
    EXPECT_DOUBLE_EQ(group.lastActivity(), 0.0);
}

TEST(AutomatonGroup, CandidateTaskNames)
{
    LetterCatalog letters;
    TaskAutomaton x = makeLetterAutomaton(letters, "x", {"A", "B"},
                                          {{"A", "B"}});
    TaskAutomaton y = makeLetterAutomaton(letters, "y", {"A", "C"},
                                          {{"A", "C"}});
    AutomatonGroup group(1, {&x, &y});
    group.consume(letters.id("A"), 1, 0.0);
    auto names = group.candidateTaskNames();
    EXPECT_EQ(names.size(), 2u);
}

TEST(AutomatonGroup, CloneTracksLineage)
{
    LetterCatalog letters;
    TaskAutomaton x = makeLetterAutomaton(letters, "x", {"A", "B"},
                                          {{"A", "B"}});
    AutomatonGroup group(3, {&x});
    group.consume(letters.id("A"), 1, 0.0);
    AutomatonGroup clone = group.cloneAs(9);
    EXPECT_EQ(clone.id(), 9u);
    EXPECT_EQ(clone.parent(), 3u);
    EXPECT_EQ(clone.history().size(), 1u);
    EXPECT_TRUE(clone.equivalentTo(group));
}

// --- InterleavedChecker (Algorithm 2) -----------------------------------

class CheckerTest : public ::testing::Test
{
  protected:
    LetterCatalog letters;
    std::unique_ptr<TaskAutomaton> boot;
    std::unique_ptr<InterleavedChecker> checker;
    logging::RecordId nextRecord = 1;
    double clock = 0.0;

    void
    SetUp() override
    {
        boot = std::make_unique<TaskAutomaton>(bootAutomaton(letters));
        checker = std::make_unique<InterleavedChecker>(
            CheckerConfig{}, std::vector<const TaskAutomaton *>{
                                 boot.get()});
    }

    std::vector<CheckEvent>
    feed(const std::string &letter, std::vector<std::string> ids,
         logging::LogLevel level = logging::LogLevel::Info)
    {
        clock += 0.1;
        return checker->feed(makeMessage(letters, letter,
                                         std::move(ids), nextRecord++,
                                         clock, level));
    }
};

TEST_F(CheckerTest, PaperTable1TwoInterleavedBoots)
{
    // Figure 2's twelve messages with the paper's identifier values.
    std::vector<CheckEvent> accepted;
    auto collect = [&accepted](std::vector<CheckEvent> events) {
        for (CheckEvent &event : events) {
            ASSERT_EQ(event.kind, CheckEventKind::Accepted);
            accepted.push_back(std::move(event));
        }
    };
    collect(feed("A", {"IP1"}));                              // (1)
    collect(feed("A", {"IP2"}));                              // (2)
    collect(feed("P", {"UUID1", "IP1", "UUID2"}));            // (3)
    collect(feed("P", {"UUID3", "IP2", "UUID4"}));            // (4)
    collect(feed("S", {"UUID1", "UUID5"}));                   // (5)
    collect(feed("S", {"UUID3", "UUID6"}));                   // (6)
    collect(feed("G", {"UUID3", "IP2", "UUID4", "UUID6"}));   // (7)
    collect(feed("T", {"UUID1", "UUID5"}));                   // (8)
    collect(feed("G", {"UUID1", "IP1", "UUID2", "UUID5"}));   // (9)
    collect(feed("T", {"UUID3", "UUID6"}));                   // (10)
    collect(feed("W", {"UUID5"}));                            // (11)
    collect(feed("W", {"UUID6"}));                            // (12)

    ASSERT_EQ(accepted.size(), 2u);
    EXPECT_EQ(accepted[0].taskName, "boot");
    EXPECT_EQ(accepted[1].taskName, "boot");
    EXPECT_EQ(accepted[0].records,
              (std::vector<logging::RecordId>{1, 3, 5, 8, 9, 11}));
    EXPECT_EQ(accepted[1].records,
              (std::vector<logging::RecordId>{2, 4, 6, 7, 10, 12}));

    const CheckerStats &stats = checker->stats();
    EXPECT_EQ(stats.recoveredNewSequence, 2u);
    EXPECT_EQ(stats.decisive, 10u);
    EXPECT_EQ(stats.ambiguous, 0u);
    EXPECT_EQ(stats.accepted, 2u);
    EXPECT_EQ(checker->activeGroups(), 0u) << "accepted groups pruned";
    EXPECT_EQ(checker->activeIdentifierSets(), 0u);
}

TEST_F(CheckerTest, UnknownTemplatePassesThrough)
{
    auto events = feed("Z", {"IP1"});
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(checker->stats().recoveredPassUnknown, 1u);
    EXPECT_EQ(checker->activeGroups(), 0u);
}

TEST_F(CheckerTest, MidSequenceMessageCannotStartSequence)
{
    auto events = feed("P", {"IP1"});
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(checker->stats().unmatched, 1u);
    EXPECT_EQ(checker->activeGroups(), 0u);
}

TEST_F(CheckerTest, RecoveryCWrongIdentifierSet)
{
    // Sequence 1 grows a large identifier set; a second sequence by
    // the same tenant then emits a message sharing *more* identifiers
    // with sequence 1's set than with its own.
    feed("A", {"IP1"});
    feed("P", {"a", "IP1", "b"});
    feed("S", {"a", "c"});          // seq 1 set: {IP1, a, b, c}

    feed("A", {"IP1"});             // seq 2 via recovery (b)
    EXPECT_EQ(checker->stats().recoveredNewSequence, 2u);

    // Seq 2's POST shares 3 ids with seq 1's set but only 1 with its
    // own; routing goes wrong and recovery (c) must fix it.
    auto events = feed("P", {"a", "IP1", "b"});
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(checker->stats().recoveredOtherSet, 1u);
    EXPECT_EQ(checker->activeGroups(), 2u);
}

TEST_F(CheckerTest, RecoveryDFalseDependencyReorder)
{
    // G arrives before S (shipping reorder): all cheaper recoveries
    // fail and the checker must weaken the model on the fly.
    feed("A", {"IP1"});
    feed("P", {"u1", "IP1", "u2"});
    auto events = feed("G", {"u1", "IP1", "u2", "u5"}); // S missing!
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(checker->stats().recoveredFalseDependency, 1u);

    // The sequence still completes once S and the rest arrive.
    feed("S", {"u1", "u5"});
    feed("T", {"u1", "u5"});
    auto final_events = feed("W", {"u5"});
    ASSERT_EQ(final_events.size(), 1u);
    EXPECT_EQ(final_events[0].kind, CheckEventKind::Accepted);
    EXPECT_EQ(final_events[0].records.size(), 6u);
}

TEST_F(CheckerTest, ErrorCriterionAssociatesBestGroup)
{
    feed("A", {"IP1"});
    feed("P", {"u1", "IP1", "u2"});
    // An ERROR message with an unknown template but matching ids.
    auto events = feed("E", {"u1"}, logging::LogLevel::Error);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::ErrorDetected);
    EXPECT_EQ(events[0].taskName, "boot");
    // Record ids: the two consumed plus the error message itself.
    EXPECT_EQ(events[0].records.size(), 3u);
    EXPECT_EQ(checker->stats().errorsReported, 1u);
    EXPECT_EQ(checker->activeGroups(), 0u)
        << "erroneous group no longer checked";
}

TEST_F(CheckerTest, ErrorWithoutAnyGroup)
{
    auto events = feed("E", {"zz"}, logging::LogLevel::Error);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::ErrorDetected);
    EXPECT_EQ(events[0].taskName, "(unassociated)");
}

TEST_F(CheckerTest, TimeoutCriterionReportsStaleGroup)
{
    feed("A", {"IP1"});
    feed("P", {"u1", "IP1", "u2"});
    auto events = checker->sweepTimeouts(clock + 30.0, 10.0);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Timeout);
    EXPECT_EQ(events[0].taskName, "boot");
    EXPECT_EQ(events[0].records.size(), 2u);
    ASSERT_FALSE(events[0].expectedTemplates.empty());
    EXPECT_EQ(events[0].expectedTemplates[0], letters.id("S"));
    EXPECT_EQ(checker->stats().timeoutsReported, 1u);
}

TEST_F(CheckerTest, FreshGroupNotTimedOut)
{
    feed("A", {"IP1"});
    auto events = checker->sweepTimeouts(clock + 5.0, 10.0);
    EXPECT_TRUE(events.empty());
}

TEST_F(CheckerTest, ZombieAbsorbsLateMessagesSilently)
{
    feed("A", {"IP1"});
    feed("P", {"u1", "IP1", "u2"});
    auto timeouts = checker->sweepTimeouts(clock + 30.0, 10.0);
    ASSERT_EQ(timeouts.size(), 1u);
    EXPECT_EQ(checker->activeGroups(), 1u) << "zombie retained";

    // The delayed continuation arrives: consumed, no further reports.
    clock += 30.0;
    std::vector<CheckEvent> all;
    for (const char *m : {"S", "T", "G", "W"}) {
        auto events = feed(m, {"u1", "IP1", "u5"});
        all.insert(all.end(), events.begin(), events.end());
    }
    EXPECT_TRUE(all.empty()) << "zombie acceptance is silent";
    EXPECT_EQ(checker->activeGroups(), 0u);
    EXPECT_EQ(checker->stats().timeoutsReported, 1u);
}

TEST_F(CheckerTest, FinishFlushesOpenGroups)
{
    feed("A", {"IP1"});
    auto events = checker->finish(clock);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Timeout);
    EXPECT_EQ(checker->activeGroups(), 0u);
    EXPECT_EQ(checker->activeIdentifierSets(), 0u);
}

TEST_F(CheckerTest, BruteForceModeStillWorks)
{
    CheckerConfig config;
    config.identifierRouting = false;
    InterleavedChecker brute(config, {boot.get()});
    logging::RecordId rid = 1;
    double t = 0.0;
    std::size_t accepted = 0;
    for (const char *m : {"A", "P", "S", "G", "T", "W"}) {
        for (CheckEvent &event :
             brute.feed(makeMessage(letters, m, {"IP1"}, rid++,
                                    t += 0.1))) {
            EXPECT_EQ(event.kind, CheckEventKind::Accepted);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 1u);
}

// --- ambiguity (case 2) and lineage pruning ----------------------------

class AmbiguityTest : public ::testing::Test
{
  protected:
    LetterCatalog letters;
    std::unique_ptr<TaskAutomaton> chain;
    std::unique_ptr<InterleavedChecker> checker;
    logging::RecordId nextRecord = 1;
    double clock = 0.0;

    void
    SetUp() override
    {
        chain = std::make_unique<TaskAutomaton>(makeLetterAutomaton(
            letters, "chain", {"A", "B", "C"}, {{"A", "B"},
                                                {"B", "C"}}));
        checker = std::make_unique<InterleavedChecker>(
            CheckerConfig{}, std::vector<const TaskAutomaton *>{
                                 chain.get()});
    }

    std::vector<CheckEvent>
    feed(const std::string &letter, std::vector<std::string> ids)
    {
        clock += 0.1;
        return checker->feed(makeMessage(letters, letter,
                                         std::move(ids), nextRecord++,
                                         clock));
    }
};

TEST_F(AmbiguityTest, FullyIdenticalSequencesResolveByDedup)
{
    // Two executions with byte-identical identifiers: both fresh
    // groups share one identifier-set entry, so the equivalent-group
    // heuristic collapses them and no forking is needed at all.
    std::size_t accepted = 0;
    std::vector<std::string> script = {"A", "A", "B", "B", "C", "C"};
    for (const std::string &m : script) {
        for (CheckEvent &event : feed(m, {"u"})) {
            EXPECT_EQ(event.kind, CheckEventKind::Accepted);
            EXPECT_EQ(event.records.size(), 3u);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 2u);
    EXPECT_EQ(checker->activeGroups(), 0u);
}

TEST_F(AmbiguityTest, OverlappingSequencesForkHypotheses)
{
    // Two sequences whose identifier sets differ ({u,a} vs {u,b}) but
    // tie on a message carrying only the shared identifier: the
    // checker must brute-force track both alternatives (case 2), and
    // exactly two sequences must come out accepted.
    std::size_t accepted = 0;
    feed("A", {"u", "a"});
    feed("A", {"u", "b"});
    for (const char *m : {"B", "B", "C", "C"}) {
        for (CheckEvent &event : feed(m, {"u"})) {
            EXPECT_EQ(event.kind, CheckEventKind::Accepted);
            EXPECT_EQ(event.records.size(), 3u);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 2u);
    EXPECT_GT(checker->stats().ambiguous, 0u)
        << "tying identifier sets must trigger case (2)";
    EXPECT_LE(checker->activeGroups(), 1u)
        << "at most one stale hypothesis may remain";
}

TEST_F(AmbiguityTest, TimeoutSuppressionPrunesCoveredAncestors)
{
    // Force an ambiguity, then advance only one branch. The stale
    // pre-fork parents are covered by the active lineage and must be
    // pruned silently rather than reported.
    feed("A", {"u", "a"}); // t = 0.1
    feed("A", {"u", "b"}); // t = 0.2
    feed("B", {"u"});      // t = 0.3: ambiguous, forks hypotheses
    EXPECT_GT(checker->stats().ambiguous, 0u);
    std::size_t groups_before = checker->activeGroups();
    EXPECT_GE(groups_before, 3u);

    // At t = 10.28 the pre-fork parents (last active 0.1/0.2) are
    // stale while their clones (0.3) are still within the window:
    // the parents are covered by active lineage -> silent pruning.
    auto events = checker->sweepTimeouts(10.28, 10.0);
    EXPECT_TRUE(events.empty());
    EXPECT_GE(checker->stats().timeoutsSuppressed, 2u);
    EXPECT_EQ(checker->stats().timeoutsReported, 0u);
}

TEST_F(AmbiguityTest, SharedIdentifierSetSplitsOnDecisiveUpdate)
{
    // After an ambiguity, the clones share one pooled identifier set.
    // When a later message is consumed decisively by only one clone,
    // that clone must split off a private expanded set (paper case 1,
    // "creates a new identifier set from the original one").
    feed("A", {"u", "a"});
    feed("A", {"u", "b"});
    feed("B", {"u"}); // fork: two clones share one pooled set
    EXPECT_GE(checker->activeGroups(), 3u);
    EXPECT_LE(checker->activeIdentifierSets(),
              checker->activeGroups())
        << "groups own exactly one set each; sets can be shared";

    // C completes one clone: acceptance pruning must leave the
    // group/set tables consistent (no dangling sets).
    auto events = feed("C", {"u", "fresh-id"});
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Accepted);
    EXPECT_LE(checker->activeIdentifierSets(),
              checker->activeGroups());
    if (checker->activeGroups() == 0) {
        EXPECT_EQ(checker->activeIdentifierSets(), 0u);
    }
}

TEST_F(CheckerTest, RecoveryCWalksMultipleOverlapLevels)
{
    // Three sequences with nested identifier sets sizes 4 > 2 > 1;
    // a message matching the largest set but consumable only by the
    // smallest forces recovery (c) to walk down two levels.
    feed("A", {"a"});
    feed("P", {"a", "b"});
    feed("S", {"a", "b", "c", "d"}); // G1 set {a,b,c,d}, expects G/T

    feed("A", {"a"});
    feed("P", {"a", "b"}); // G2 set {a,b}, expects S

    feed("A", {"a"}); // G3 set {a}, expects P

    // P with ids {a,b,c,d}: best overlap is G1 (4) which cannot take
    // another P; G2 (2) already consumed its P; G3 (1) can.
    auto events = feed("P", {"a", "b", "c", "d"});
    EXPECT_TRUE(events.empty());
    EXPECT_GE(checker->stats().recoveredOtherSet, 1u);
    EXPECT_EQ(checker->stats().unmatched, 0u);
}

TEST_F(CheckerTest, ErrorOnZombiePrefersLiveGroup)
{
    // Two sequences; the first times out (zombie). An error sharing
    // identifiers with both must be attributed to the live group.
    feed("A", {"x"});
    feed("P", {"x", "shared"});
    checker->sweepTimeouts(clock + 30.0, 10.0); // zombifies seq 1
    clock += 30.0;
    feed("A", {"y"});
    feed("P", {"y", "shared"});

    auto events = feed("E", {"shared"}, logging::LogLevel::Error);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::ErrorDetected);
    // The live group consumed records 4 and 5 (plus the error = 3).
    EXPECT_EQ(events[0].records.size(), 3u);
}

TEST_F(CheckerTest, ResolverOverloadAppliesPerTaskTimeouts)
{
    feed("A", {"IP1"});
    // Resolver grants "boot" a long timeout: no report at +15 s.
    auto quiet = checker->sweepTimeouts(
        clock + 15.0, [](const std::vector<std::string> &tasks) {
            return !tasks.empty() && tasks[0] == "boot" ? 30.0 : 5.0;
        });
    EXPECT_TRUE(quiet.empty());
    // And a short one fires at the same instant.
    auto loud = checker->sweepTimeouts(
        clock + 15.0,
        [](const std::vector<std::string> &) { return 5.0; });
    EXPECT_EQ(loud.size(), 1u);
}

TEST_F(CheckerTest, StatsAccumulateConsistently)
{
    feed("A", {"IP1"});
    feed("P", {"u1", "IP1", "u2"});
    feed("Z", {"IP1"}); // unknown template
    feed("S", {"u1", "u5"});
    const CheckerStats &stats = checker->stats();
    EXPECT_EQ(stats.messages, 4u);
    EXPECT_EQ(stats.recoveredPassUnknown, 1u);
    EXPECT_EQ(stats.recoveredNewSequence, 1u);
    EXPECT_EQ(stats.decisive, 2u);
    EXPECT_GT(stats.consumeAttempts, 0u);
    double fraction = stats.decisiveFraction();
    EXPECT_GT(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
}

TEST_F(CheckerTest, EmptyIdentifierMessageFallsBackToAllGroups)
{
    // A known template with no extracted identifiers cannot be routed
    // by sets; the checker must fall back to probing all groups.
    feed("A", {"IP1"});
    auto events = feed("P", {});
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(checker->stats().decisive, 1u);
    EXPECT_EQ(checker->activeGroups(), 1u);
}

TEST_F(AmbiguityTest, SuppressionCanBeDisabled)
{
    CheckerConfig config;
    config.timeoutSuppression = false;
    InterleavedChecker noisy(config, {chain.get()});
    logging::RecordId rid = 1;
    noisy.feed(makeMessage(letters, "A", {"u", "a"}, rid++, 0.1));
    noisy.feed(makeMessage(letters, "A", {"u", "b"}, rid++, 0.2));
    noisy.feed(makeMessage(letters, "B", {"u"}, rid++, 0.3));
    auto events = noisy.sweepTimeouts(10.28, 10.0);
    EXPECT_GT(events.size(), 0u)
        << "without suppression the stale parents are reported";
    EXPECT_EQ(noisy.stats().timeoutsSuppressed, 0u);
}
