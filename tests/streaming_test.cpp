/**
 * @file
 * Tests for the live-monitoring path: per-node/service sinks, the
 * emission tail, the streaming session (monitoring *during* the run),
 * and JSON report rendering.
 */

#include <gtest/gtest.h>

#include "collect/node_sinks.hpp"
#include "core/monitor/report_json.hpp"
#include "eval/modeling_harness.hpp"
#include "eval/streaming_session.hpp"
#include "workload/workload_generator.hpp"

using namespace cloudseer;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(NodeSinks, PartitionsByNodeAndService)
{
    sim::SimConfig config;
    sim::Simulation simulation(config, 41);
    sim::UserProfile user = simulation.makeUser();
    sim::VmHandle vm = simulation.makeVm();
    simulation.submit(sim::TaskType::Boot, 0.0, user, vm);
    simulation.run();

    collect::NodeSinks sinks;
    sinks.appendStream(simulation.records());
    EXPECT_EQ(sinks.recordCount(), simulation.records().size());
    // A boot touches at least api/keystone/scheduler/conductor on the
    // controller plus compute/hypervisor on one compute node.
    EXPECT_GE(sinks.fileCount(), 6u);
    EXPECT_FALSE(sinks.file("controller", "nova-api").empty());
    EXPECT_FALSE(sinks.file(vm.computeNode, "nova-compute").empty());
    EXPECT_TRUE(sinks.file("controller", "no-such-service").empty());
}

TEST(NodeSinks, FilesAreTimeOrdered)
{
    sim::SimConfig config;
    sim::Simulation simulation(config, 43);
    sim::UserProfile user = simulation.makeUser();
    for (int i = 0; i < 4; ++i) {
        sim::VmHandle vm = simulation.makeVm();
        simulation.submit(sim::TaskType::Boot, i * 2.0, user, vm);
    }
    simulation.run();

    collect::NodeSinks sinks;
    sinks.appendStream(simulation.records());
    for (const auto &[key, records] : sinks.files()) {
        for (std::size_t i = 1; i < records.size(); ++i) {
            EXPECT_GE(records[i].timestamp, records[i - 1].timestamp)
                << key.node << "/" << key.service;
        }
    }
}

TEST(NodeSinks, MergeReassemblesTheStream)
{
    sim::SimConfig config;
    sim::Simulation simulation(config, 47);
    sim::UserProfile user = simulation.makeUser();
    for (int i = 0; i < 3; ++i) {
        sim::VmHandle vm = simulation.makeVm();
        simulation.submit(sim::TaskType::Boot, i * 1.5, user, vm);
    }
    simulation.run();

    collect::NodeSinks sinks;
    sinks.appendStream(simulation.records());
    std::vector<logging::LogRecord> merged = sinks.mergeByTimestamp();
    ASSERT_EQ(merged.size(), simulation.records().size());
    for (std::size_t i = 1; i < merged.size(); ++i)
        EXPECT_GE(merged[i].timestamp, merged[i - 1].timestamp);

    // Same multiset of record ids.
    std::set<logging::RecordId> original, reassembled;
    for (const logging::LogRecord &record : simulation.records())
        original.insert(record.id);
    for (const logging::LogRecord &record : merged)
        reassembled.insert(record.id);
    EXPECT_EQ(original, reassembled);
}

TEST(EmissionCallback, FiresInOrderDuringTheRun)
{
    sim::SimConfig config;
    config.enableNoise = false;
    sim::Simulation simulation(config, 51);
    std::vector<double> seen;
    simulation.setEmissionCallback(
        [&seen](const logging::LogRecord &record) {
            seen.push_back(record.timestamp);
        });
    sim::UserProfile user = simulation.makeUser();
    sim::VmHandle vm = simulation.makeVm();
    simulation.submit(sim::TaskType::Stop, 0.0, user, vm);
    simulation.run();
    ASSERT_EQ(seen.size(), simulation.records().size());
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GE(seen[i], seen[i - 1]);
}

TEST(StreamingSession, MonitorsLiveAndAcceptsEverything)
{
    sim::SimConfig config;
    sim::Simulation simulation(config, 53);
    workload::WorkloadConfig wl;
    wl.users = 3;
    wl.tasksPerUser = 8;
    wl.seed = 3;
    std::size_t tasks =
        workload::WorkloadGenerator(wl).submitAll(simulation);

    core::MonitorConfig monitor_config;
    core::WorkflowMonitor monitor(monitor_config, models().catalog,
                                  models().automataCopy());

    std::size_t accepted = 0;
    std::size_t problems = 0;
    eval::StreamingSession session(
        simulation, monitor, collect::ShippingConfig{},
        [&](const core::MonitorReport &report) {
            if (report.event.kind == core::CheckEventKind::Accepted)
                ++accepted;
            else
                ++problems;
        });
    session.run();

    EXPECT_EQ(session.delivered(), simulation.records().size());
    EXPECT_EQ(accepted, tasks);
    EXPECT_EQ(problems, 0u);
}

TEST(StreamingSession, DetectsInjectedProblemsLive)
{
    sim::SimConfig config;
    sim::Simulation simulation(config, 57);
    simulation.setInjector(sim::FaultInjector(
        sim::InjectionPoint::AmqpReceiver, 1.0, 0.0, 57,
        /*max_problems=*/2));
    workload::WorkloadConfig wl;
    wl.users = 2;
    wl.tasksPerUser = 6;
    wl.seed = 5;
    workload::WorkloadGenerator(wl).submitAll(simulation);

    core::MonitorConfig monitor_config;
    monitor_config.timeoutSeconds = 10.0;
    core::WorkflowMonitor monitor(monitor_config, models().catalog,
                                  models().automataCopy());

    std::size_t problems = 0;
    eval::StreamingSession session(
        simulation, monitor, collect::ShippingConfig{},
        [&](const core::MonitorReport &report) {
            if (report.event.kind != core::CheckEventKind::Accepted)
                ++problems;
        });
    session.run();
    EXPECT_EQ(simulation.injector().records().size(), 2u);
    EXPECT_GE(problems, 2u);
}

TEST(ReportJson, EscapesStrings)
{
    using core::jsonEscape;
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("x\x01y")), "x\\u0001y");
}

TEST(ReportJson, RendersReportFields)
{
    core::MonitorReport report;
    report.event.kind = core::CheckEventKind::Timeout;
    report.event.taskName = "boot";
    report.event.time = 83.214;
    report.event.records = {1, 3, 5};
    report.event.candidateTasks = {"boot"};
    report.endOfStream = true;

    logging::TemplateCatalog catalog;
    logging::TemplateId tpl =
        catalog.intern("nova-api", "Accepted \"quote\" <ip>");
    report.event.frontierTemplates = {tpl};
    report.event.expectedTemplates = {tpl};

    std::string json = core::reportToJson(report, catalog);
    EXPECT_NE(json.find("\"kind\":\"TIMEOUT\""), std::string::npos);
    EXPECT_NE(json.find("\"task\":\"boot\""), std::string::npos);
    EXPECT_NE(json.find("\"time\":83.214"), std::string::npos);
    EXPECT_NE(json.find("\"endOfStream\":true"), std::string::npos);
    EXPECT_NE(json.find("\"records\":[1,3,5]"), std::string::npos);
    EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos)
        << "template text must be escaped: " << json;
    // Single line.
    EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(ReportJson, StreamsFromTheMonitor)
{
    // End-to-end: produce a real report and render it.
    sim::SimConfig config;
    sim::Simulation simulation(config, 61);
    simulation.setInjector(sim::FaultInjector(
        sim::InjectionPoint::AmqpSender, 1.0, 0.0, 61, 1));
    sim::UserProfile user = simulation.makeUser();
    sim::VmHandle vm = simulation.makeVm();
    simulation.submit(sim::TaskType::Boot, 0.0, user, vm);

    core::WorkflowMonitor monitor(core::MonitorConfig{},
                                  models().catalog,
                                  models().automataCopy());
    std::vector<std::string> jsons;
    eval::StreamingSession session(
        simulation, monitor, collect::ShippingConfig{},
        [&](const core::MonitorReport &report) {
            jsons.push_back(
                core::reportToJson(report, monitor.catalog()));
        });
    session.run();
    ASSERT_FALSE(jsons.empty());
    bool has_problem = false;
    for (const std::string &json : jsons)
        has_problem |= json.find("TIMEOUT") != std::string::npos ||
                       json.find("ERROR") != std::string::npos;
    EXPECT_TRUE(has_problem);
}
