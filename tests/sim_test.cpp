/**
 * @file
 * Unit tests for the simulated OpenStack deployment: event queue,
 * topology, workflow specs, fault injection, and ground truth.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "logging/variable_extractor.hpp"
#include "sim/simulation.hpp"

using namespace cloudseer;
using namespace cloudseer::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(3.0, [&] { order.push_back(3); });
    queue.schedule(1.0, [&] { order.push_back(1); });
    queue.schedule(2.0, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.executedEvents(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(1.0, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMore)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&] {
        ++fired;
        queue.scheduleAfter(1.0, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&] { ++fired; });
    queue.schedule(5.0, [&] { ++fired; });
    queue.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(queue.empty());
    queue.run();
    EXPECT_EQ(fired, 2);
}

TEST(Cluster, FiveNodeTopology)
{
    common::Rng rng(1);
    Cluster cluster(rng);
    EXPECT_EQ(cluster.computes().size(), 3u);
    EXPECT_EQ(cluster.controller().name, "controller");
    EXPECT_EQ(cluster.network().name, "network");
    std::set<std::string> ips;
    ips.insert(cluster.controller().ip);
    ips.insert(cluster.network().ip);
    for (const Node &node : cluster.computes())
        ips.insert(node.ip);
    EXPECT_EQ(ips.size(), 5u) << "node IPs must be distinct";
}

TEST(TaskType, NamesRoundTrip)
{
    for (TaskType type : kAllTaskTypes) {
        TaskType parsed;
        ASSERT_TRUE(parseTaskType(taskTypeName(type), parsed));
        EXPECT_EQ(parsed, type);
    }
    TaskType out;
    EXPECT_FALSE(parseTaskType("reboot", out));
}

TEST(Flows, KeyMessageCountsMatchPaperTable2)
{
    // Paper Table 2 "Msgs" column.
    EXPECT_EQ(keyMessageCount(TaskType::Boot), 23u);
    EXPECT_EQ(keyMessageCount(TaskType::Delete), 9u);
    EXPECT_EQ(keyMessageCount(TaskType::Start), 7u);
    EXPECT_EQ(keyMessageCount(TaskType::Stop), 6u);
    EXPECT_EQ(keyMessageCount(TaskType::Pause), 7u);
    EXPECT_EQ(keyMessageCount(TaskType::Unpause), 7u);
    EXPECT_EQ(keyMessageCount(TaskType::Suspend), 6u);
    EXPECT_EQ(keyMessageCount(TaskType::Resume), 7u);
}

TEST(Flows, DependenciesAreAcyclicAndInRange)
{
    for (TaskType type : kAllTaskTypes) {
        const FlowSpec &flow = flowFor(type);
        for (std::size_t i = 0; i < flow.steps.size(); ++i) {
            for (int dep : flow.steps[i].deps) {
                EXPECT_GE(dep, 0);
                // Flows are written in topological order: dependencies
                // always point backwards, which implies acyclicity.
                EXPECT_LT(dep, static_cast<int>(i))
                    << taskTypeName(type) << " step " << i;
            }
        }
    }
}

TEST(Flows, EveryTaskHasAsyncBranching)
{
    // Each workflow must contain at least one fork (a step with two
    // dependents) to exercise in-sequence interleaving.
    for (TaskType type : kAllTaskTypes) {
        const FlowSpec &flow = flowFor(type);
        std::map<int, int> dependents;
        for (const FlowStep &step : flow.steps) {
            if (step.variablePoll)
                continue;
            for (int dep : step.deps)
                ++dependents[dep];
        }
        bool has_fork = false;
        for (auto [step, count] : dependents)
            has_fork |= count > 1;
        EXPECT_TRUE(has_fork) << taskTypeName(type);
    }
}

TEST(Flows, InjectionSitesCoverTable4)
{
    // Every Table 4 injection point must be reachable from some flow.
    std::set<InjectionPoint> seen;
    for (TaskType type : kAllTaskTypes) {
        for (const FlowStep &step : flowFor(type).steps) {
            for (InjectionPoint site : step.sites)
                seen.insert(site);
        }
    }
    for (InjectionPoint point : kAllInjectionPoints)
        EXPECT_TRUE(seen.count(point)) << injectionPointName(point);
}

TEST(Flows, BodiesCarryIdentifiers)
{
    // Every key message must carry at least one routable identifier
    // (IP or UUID) so the checker can associate it with a sequence.
    logging::VariableExtractor extractor;
    TaskContext ctx;
    ctx.requestId = "11111111-2222-3333-4444-555555555555";
    ctx.userId = "aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee";
    ctx.tenantId = "99999999-8888-7777-6666-555555555555";
    ctx.instanceId = "12121212-3434-5656-7878-909090909090";
    ctx.imageId = "abcdabcd-abcd-abcd-abcd-abcdabcdabcd";
    ctx.clientIp = "10.1.2.3";
    ctx.computeNode = "compute-1";
    ctx.computeIp = "10.9.8.7";
    for (TaskType type : kAllTaskTypes) {
        for (const FlowStep &step : flowFor(type).steps) {
            std::string body = step.body(ctx);
            EXPECT_FALSE(extractor.extractIdentifiers(body).empty())
                << taskTypeName(type) << ": " << body;
        }
    }
}

TEST(FaultInjector, DisabledNeverTriggers)
{
    FaultInjector injector;
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(injector.evaluate(InjectionPoint::AmqpSender,
                                    1, 0.0),
                  ProblemType::None);
    }
    EXPECT_TRUE(injector.records().empty());
}

TEST(FaultInjector, OnlyEnabledPointTriggers)
{
    FaultInjector injector(InjectionPoint::ImageCreate, 1.0, 1.0, 1);
    EXPECT_EQ(injector.evaluate(InjectionPoint::AmqpSender, 1, 0.0),
              ProblemType::None);
    EXPECT_NE(injector.evaluate(InjectionPoint::ImageCreate, 1, 0.0),
              ProblemType::None);
}

TEST(FaultInjector, AtMostOneProblemPerExecution)
{
    FaultInjector injector(InjectionPoint::AmqpSender, 1.0, 1.0, 2);
    EXPECT_NE(injector.evaluate(InjectionPoint::AmqpSender, 7, 0.0),
              ProblemType::None);
    EXPECT_EQ(injector.evaluate(InjectionPoint::AmqpSender, 7, 1.0),
              ProblemType::None);
    EXPECT_EQ(injector.records().size(), 1u);
    EXPECT_EQ(injector.records()[0].execution, 7u);
}

TEST(FaultInjector, TriggerRateApproximatesProbability)
{
    FaultInjector injector(InjectionPoint::WsgiServer, 0.25, 0.5, 3);
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        injector.evaluate(InjectionPoint::WsgiServer,
                          static_cast<logging::ExecutionId>(i + 1), 0.0);
    }
    double rate =
        static_cast<double>(injector.records().size()) / trials;
    EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(FaultInjector, ProblemTypesAllOccur)
{
    FaultInjector injector(InjectionPoint::AmqpReceiver, 1.0, 0.5, 4);
    std::set<ProblemType> seen;
    for (int i = 0; i < 100; ++i) {
        seen.insert(injector.evaluate(
            InjectionPoint::AmqpReceiver,
            static_cast<logging::ExecutionId>(i + 1), 0.0));
    }
    EXPECT_TRUE(seen.count(ProblemType::Delay));
    EXPECT_TRUE(seen.count(ProblemType::Abort));
    EXPECT_TRUE(seen.count(ProblemType::Silent));
}

TEST(Simulation, HealthyBootEmitsAllKeyMessages)
{
    Simulation simulation(SimConfig{}, 11);
    UserProfile user = simulation.makeUser();
    VmHandle vm = simulation.makeVm();
    logging::ExecutionId exec =
        simulation.submit(TaskType::Boot, 0.0, user, vm);
    simulation.run();

    std::size_t task_records = 0;
    for (const logging::LogRecord &record : simulation.records()) {
        if (record.truthExecution == exec)
            ++task_records;
    }
    EXPECT_GE(task_records, keyMessageCount(TaskType::Boot));
    EXPECT_TRUE(simulation.truth().execution(exec).completed);
    EXPECT_FALSE(vm.computeNode.empty()) << "boot must place the VM";
}

TEST(Simulation, DeterministicForEqualSeeds)
{
    auto run = [](std::uint64_t seed) {
        Simulation simulation(SimConfig{}, seed);
        UserProfile user = simulation.makeUser();
        VmHandle vm = simulation.makeVm();
        simulation.submit(TaskType::Boot, 0.0, user, vm);
        simulation.submit(TaskType::Delete, 8.0, user, vm);
        simulation.run();
        std::vector<std::string> bodies;
        for (const logging::LogRecord &record : simulation.records())
            bodies.push_back(record.body);
        return bodies;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Simulation, TimestampsNonDecreasing)
{
    Simulation simulation(SimConfig{}, 12);
    UserProfile user = simulation.makeUser();
    VmHandle vm = simulation.makeVm();
    simulation.submit(TaskType::Boot, 0.0, user, vm);
    simulation.run();
    const auto &records = simulation.records();
    for (std::size_t i = 1; i < records.size(); ++i)
        EXPECT_GE(records[i].timestamp, records[i - 1].timestamp);
}

TEST(Simulation, AbortInjectionCancelsDownstream)
{
    SimConfig config;
    config.enableNoise = false;
    Simulation simulation(config, 13);
    // Probability 1 and error probability 1: deterministic abort with
    // an ERROR message at the first AMQP crossing.
    simulation.setInjector(
        FaultInjector(InjectionPoint::AmqpSender, 1.0, 1.0, 13));
    UserProfile user = simulation.makeUser();
    VmHandle vm = simulation.makeVm();
    logging::ExecutionId exec =
        simulation.submit(TaskType::Boot, 0.0, user, vm);
    simulation.run();

    const ExecutionInfo &info = simulation.truth().execution(exec);
    EXPECT_TRUE(info.aborted);
    EXPECT_FALSE(info.completed);
    EXPECT_LT(info.emittedMessages, keyMessageCount(TaskType::Boot));

    bool saw_error = false;
    for (const logging::LogRecord &record : simulation.records())
        saw_error |= record.level == logging::LogLevel::Error;
    EXPECT_TRUE(saw_error);
    ASSERT_EQ(simulation.injector().records().size(), 1u);
    EXPECT_TRUE(simulation.injector().records()[0].emittedError);
}

TEST(Simulation, DelayInjectionStretchesExecution)
{
    SimConfig config;
    config.enableNoise = false;
    Simulation simulation(config, 77);
    // Find a seed-dependent delay by scanning executions until the
    // injector picks Delay (types are drawn uniformly).
    simulation.setInjector(
        FaultInjector(InjectionPoint::AmqpReceiver, 1.0, 0.0, 3));
    UserProfile user = simulation.makeUser();
    bool found_delay = false;
    for (int i = 0; i < 12 && !found_delay; ++i) {
        VmHandle vm = simulation.makeVm();
        logging::ExecutionId exec = simulation.submit(
            TaskType::Boot, i * 100.0, user, vm);
        simulation.run();
        const ExecutionInfo &info = simulation.truth().execution(exec);
        if (info.delayed) {
            found_delay = true;
            EXPECT_TRUE(info.completed)
                << "delayed executions still finish";
            EXPECT_GT(info.lastEmit - info.firstEmit, 10.0)
                << "the injected delay must exceed the 10 s timeout";
        }
    }
    EXPECT_TRUE(found_delay);
}

TEST(Simulation, SilentInjectionEmitsNoError)
{
    SimConfig config;
    config.enableNoise = false;
    Simulation simulation(config, 21);
    simulation.setInjector(
        FaultInjector(InjectionPoint::ImageCreate, 1.0, 1.0, 8));
    UserProfile user = simulation.makeUser();
    bool found_silent = false;
    for (int i = 0; i < 16 && !found_silent; ++i) {
        VmHandle vm = simulation.makeVm();
        logging::ExecutionId exec = simulation.submit(
            TaskType::Boot, i * 100.0, user, vm);
        simulation.run();
        const ExecutionInfo &info = simulation.truth().execution(exec);
        if (info.silentDrop) {
            found_silent = true;
            EXPECT_FALSE(info.completed);
            for (const logging::LogRecord &record :
                 simulation.records()) {
                if (record.truthExecution == exec) {
                    EXPECT_NE(record.level, logging::LogLevel::Error);
                }
            }
        }
    }
    EXPECT_TRUE(found_silent);
}

TEST(Simulation, SharedUserIsStable)
{
    Simulation simulation(SimConfig{}, 30);
    const UserProfile &a = simulation.sharedUser();
    const UserProfile &b = simulation.sharedUser();
    EXPECT_EQ(a.userId, b.userId);
    EXPECT_EQ(a.clientIp, b.clientIp);
    UserProfile fresh = simulation.makeUser();
    EXPECT_NE(fresh.userId, a.userId);
}

TEST(Simulation, NoiseCanBeDisabled)
{
    SimConfig config;
    config.enableNoise = false;
    Simulation simulation(config, 31);
    UserProfile user = simulation.makeUser();
    VmHandle vm = simulation.makeVm();
    simulation.submit(TaskType::Stop, 0.0, user, vm);
    simulation.run();
    for (const logging::LogRecord &record : simulation.records())
        EXPECT_NE(record.truthExecution, 0u);
}

TEST(GroundTruth, ConcurrencyPeaks)
{
    GroundTruth truth;
    auto a = truth.beginExecution(TaskType::Boot, "u", "i1", 0.0);
    auto b = truth.beginExecution(TaskType::Boot, "u", "i2", 0.0);
    auto c = truth.beginExecution(TaskType::Boot, "u", "i3", 0.0);
    // a: [0, 10], b: [5, 15] (overlaps a), c: [20, 30] (alone).
    truth.noteEmission(a, 0.0);
    truth.noteEmission(a, 10.0);
    truth.noteEmission(b, 5.0);
    truth.noteEmission(b, 15.0);
    truth.noteEmission(c, 20.0);
    truth.noteEmission(c, 30.0);

    std::vector<int> peaks = truth.maxConcurrency();
    EXPECT_EQ(peaks[0], 2);
    EXPECT_EQ(peaks[1], 2);
    EXPECT_EQ(peaks[2], 1);
    EXPECT_NEAR(truth.interleavedFraction(2), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(truth.interleavedFraction(3), 0.0, 1e-9);
}

TEST(GroundTruth, EmissionWindowTracksMinMax)
{
    GroundTruth truth;
    auto a = truth.beginExecution(TaskType::Stop, "u", "i", 1.0);
    truth.noteEmission(a, 5.0);
    truth.noteEmission(a, 2.0);
    truth.noteEmission(a, 9.0);
    const ExecutionInfo &info = truth.execution(a);
    EXPECT_DOUBLE_EQ(info.firstEmit, 2.0);
    EXPECT_DOUBLE_EQ(info.lastEmit, 9.0);
    EXPECT_EQ(info.emittedMessages, 3u);
}
