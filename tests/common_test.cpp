/**
 * @file
 * Unit tests for the common substrate: RNG, UUIDs, strings, time,
 * statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "common/time_util.hpp"
#include "common/uuid.hpp"

using namespace cloudseer::common;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformU64(), b.uniformU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.uniformU64() == b.uniformU64())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 9);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<int> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.uniformInt(0, 4));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, ExpDelayPositiveWithRoughMean)
{
    Rng rng(9);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        double v = rng.expDelay(0.5);
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / trials, 0.5, 0.05);
}

TEST(Rng, NormalClampedRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        double v = rng.normalClamped(1.0, 5.0, 0.5, 1.5);
        EXPECT_GE(v, 0.5);
        EXPECT_LE(v, 1.5);
    }
}

TEST(Rng, PickReturnsMember)
{
    Rng rng(17);
    std::vector<int> items = {10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        int v = rng.pick(items);
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.fork();
    EXPECT_NE(a.uniformU64(), child.uniformU64());
}

TEST(Uuid, WellFormed)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        std::string u = makeUuid(rng);
        EXPECT_EQ(u.size(), 36u);
        EXPECT_TRUE(isUuid(u)) << u;
    }
}

TEST(Uuid, DistinctDraws)
{
    Rng rng(2);
    std::set<std::string> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(makeUuid(rng));
    EXPECT_EQ(seen.size(), 200u);
}

TEST(Uuid, RejectsMalformed)
{
    EXPECT_FALSE(isUuid(""));
    EXPECT_FALSE(isUuid("1234"));
    EXPECT_FALSE(isUuid("zzzzzzzz-1111-2222-3333-444444444444"));
    EXPECT_FALSE(isUuid("12345678-1111-2222-3333-44444444444"));  // short
    EXPECT_FALSE(isUuid("12345678-1111-2222-3333-4444444444445")); // long
    EXPECT_FALSE(isUuid("12345678x1111-2222-3333-444444444444"));
}

TEST(Ip, WellFormed)
{
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(isIp(makeIp(rng)));
}

TEST(Ip, RejectsMalformed)
{
    EXPECT_FALSE(isIp(""));
    EXPECT_FALSE(isIp("1.2.3"));
    EXPECT_FALSE(isIp("1.2.3.4.5"));
    EXPECT_FALSE(isIp("256.1.1.1"));
    EXPECT_FALSE(isIp("a.b.c.d"));
    EXPECT_TRUE(isIp("255.255.255.255"));
    EXPECT_TRUE(isIp("0.0.0.0"));
}

TEST(StringUtil, SplitPreservesEmptyFields)
{
    auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitWhitespaceDropsRuns)
{
    auto parts = splitWhitespace("  a\t b \n c  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, JoinRoundTrip)
{
    std::vector<std::string> items = {"x", "y", "z"};
    EXPECT_EQ(join(items, ", "), "x, y, z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtil, Trim)
{
    EXPECT_EQ(trim("  hello \t"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, Prefixes)
{
    EXPECT_TRUE(startsWith("nova-api", "nova"));
    EXPECT_FALSE(startsWith("api", "nova"));
    EXPECT_TRUE(endsWith("boot.log", ".log"));
    EXPECT_FALSE(endsWith("log", "boot.log"));
}

TEST(StringUtil, Formatting)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatPercent(0.9208), "92.08%");
    EXPECT_EQ(formatPercent(1.0, 1), "100.0%");
}

TEST(TimeUtil, FormatShape)
{
    std::string t = formatTimestamp(0.0);
    EXPECT_EQ(t, "2016-01-12 00:00:00.000");
    EXPECT_EQ(formatTimestamp(3661.5), "2016-01-12 01:01:01.500");
}

TEST(TimeUtil, RoundTrip)
{
    for (double t : {0.0, 0.001, 59.999, 3600.0, 86399.5, 86400.0,
                     123456.789}) {
        SimTime parsed = -1;
        ASSERT_TRUE(parseTimestamp(formatTimestamp(t), parsed)) << t;
        EXPECT_NEAR(parsed, t, 0.0015) << t;
    }
}

TEST(TimeUtil, ParseRejectsGarbage)
{
    SimTime out;
    EXPECT_FALSE(parseTimestamp("not a time", out));
    EXPECT_FALSE(parseTimestamp("2017-01-12 00:00:00.000", out));
    EXPECT_FALSE(parseTimestamp("", out));
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.median(), 0.0);
}

TEST(SampleStats, BasicMoments)
{
    SampleStats s;
    for (double v : {4.0, 1.0, 3.0, 2.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.median(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SampleStats, PercentileInterpolates)
{
    SampleStats s;
    for (int i = 1; i <= 5; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
    EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
    EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
}

TEST(SampleStats, AddAfterQueryKeepsSorted)
{
    SampleStats s;
    s.add(5.0);
    EXPECT_EQ(s.max(), 5.0);
    s.add(9.0);
    s.add(1.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.min(), 1.0);
}

TEST(DetectionStats, PrecisionRecallF1)
{
    DetectionStats d;
    d.truePositives = 54;
    d.falsePositives = 11;
    d.falseNegatives = 6;
    EXPECT_NEAR(d.precision(), 0.8308, 0.0001);
    EXPECT_NEAR(d.recall(), 0.9000, 0.0001);
    EXPECT_GT(d.f1(), 0.86);
}

TEST(DetectionStats, UndefinedRatiosAreZero)
{
    DetectionStats d;
    EXPECT_EQ(d.precision(), 0.0);
    EXPECT_EQ(d.recall(), 0.0);
    EXPECT_EQ(d.f1(), 0.0);
}

TEST(DetectionStats, MergeAccumulates)
{
    DetectionStats a;
    a.truePositives = 1;
    a.falsePositives = 2;
    DetectionStats b;
    b.truePositives = 3;
    b.falseNegatives = 4;
    a.merge(b);
    EXPECT_EQ(a.truePositives, 4u);
    EXPECT_EQ(a.falsePositives, 2u);
    EXPECT_EQ(a.falseNegatives, 4u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table({"Task", "Msgs"});
    table.addRow({"boot", "23"});
    table.addRow({"delete", "9"});
    std::string out = table.toString();
    EXPECT_NE(out.find("| Task   | Msgs |"), std::string::npos);
    EXPECT_NE(out.find("| boot   | 23   |"), std::string::npos);
    EXPECT_NE(out.find("| delete | 9    |"), std::string::npos);
}

TEST(TextTable, RangeFormatter)
{
    SampleStats s;
    s.add(0.9324);
    s.add(1.0);
    EXPECT_EQ(formatRange(s, 2), "0.93 - 1.00");
}

// --- HttpServer hardening against malformed clients -------------------

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/http_server.hpp"

namespace {

/**
 * A raw TCP client for speaking deliberately broken HTTP: send
 * `request` verbatim, optionally half-close the write side (so a
 * server waiting for more bytes sees EOF instead of blocking), and
 * return everything the server answered.
 */
std::string
rawHttpExchange(std::uint16_t port, const std::string &request,
                bool half_close = true)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    std::size_t sent = 0;
    while (sent < request.size()) {
        ssize_t n = ::send(fd, request.data() + sent,
                           request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    if (half_close)
        ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buf[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

/** An HttpServer on an ephemeral port with one document mounted. */
struct ScratchServer
{
    HttpServer server{"127.0.0.1", 0};

    ScratchServer()
    {
        server.handle("/doc", [] {
            return HttpResponse{200, "text/plain", "payload\n"};
        });
        EXPECT_TRUE(server.start()) << server.error();
    }
};

} // namespace

TEST(HttpServerHardening, OversizedRequestLineGets431)
{
    ScratchServer scratch;
    // 16 KiB of request line, never terminated: twice the 8 KiB cap,
    // so the server must answer 431 without waiting for the end.
    std::string request =
        "GET /" + std::string(16384, 'a') + " HTTP/1.0\r\n";
    std::string reply =
        rawHttpExchange(scratch.server.boundPort(), request);
    EXPECT_NE(reply.find("431"), std::string::npos) << reply;
    EXPECT_NE(reply.find("request too large"), std::string::npos)
        << reply;
    // The connection was drained, not reset: a well-formed request on
    // a fresh connection still works.
    int status = 0;
    std::string body;
    ASSERT_TRUE(httpGet("127.0.0.1", scratch.server.boundPort(),
                        "/doc", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "payload\n");
}

TEST(HttpServerHardening, UnterminatedRequestGets400)
{
    ScratchServer scratch;
    // The client hangs up before ever sending the blank line.
    std::string reply = rawHttpExchange(scratch.server.boundPort(),
                                        "GET /doc HTTP/1.0\r\n");
    EXPECT_NE(reply.find("400"), std::string::npos) << reply;
    EXPECT_NE(reply.find("malformed request"), std::string::npos);
}

TEST(HttpServerHardening, GarbageRequestLineGets400)
{
    ScratchServer scratch;
    std::string reply = rawHttpExchange(scratch.server.boundPort(),
                                        "GARBAGE\r\n\r\n");
    EXPECT_NE(reply.find("400"), std::string::npos) << reply;
    EXPECT_NE(reply.find("malformed request line"), std::string::npos)
        << reply;
    // Absolute-form target (no leading slash) is equally malformed.
    reply = rawHttpExchange(scratch.server.boundPort(),
                            "GET example.com HTTP/1.0\r\n\r\n");
    EXPECT_NE(reply.find("malformed request line"), std::string::npos)
        << reply;
}

TEST(HttpServerHardening, NonGetMethodGets405)
{
    ScratchServer scratch;
    std::string reply =
        rawHttpExchange(scratch.server.boundPort(),
                        "POST /doc HTTP/1.0\r\n\r\n");
    EXPECT_NE(reply.find("405"), std::string::npos) << reply;
    EXPECT_NE(reply.find("only GET is supported"), std::string::npos);
}

TEST(HttpServerHardening, UnknownPathGets404WithNamedTarget)
{
    ScratchServer scratch;
    int status = 0;
    std::string body;
    ASSERT_TRUE(httpGet("127.0.0.1", scratch.server.boundPort(),
                        "/nowhere", status, body));
    EXPECT_EQ(status, 404);
    EXPECT_EQ(body, "unknown path: /nowhere\n");
}

TEST(HttpServerHardening, SurvivesClientDisconnectingMidRequest)
{
    ScratchServer scratch;
    // A burst of clients that connect and vanish without a byte: the
    // response write hits a dead socket (EPIPE, suppressed by
    // MSG_NOSIGNAL), and the accept loop must shrug all of it off.
    for (int i = 0; i < 5; ++i) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(scratch.server.boundPort());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        ::close(fd);
    }
    int status = 0;
    std::string body;
    ASSERT_TRUE(httpGet("127.0.0.1", scratch.server.boundPort(),
                        "/doc", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "payload\n");
}
