/**
 * @file
 * Unit tests for the transport-adversity layer: every fault kind must
 * be deterministic, ground-truthed, and absent at zero intensity.
 */

#include <gtest/gtest.h>

#include <set>

#include "collect/stream_perturber.hpp"
#include "logging/log_codec.hpp"

using namespace cloudseer;
using namespace cloudseer::collect;

namespace {

std::vector<logging::LogRecord>
makeStream(int count, const std::vector<std::string> &nodes)
{
    std::vector<logging::LogRecord> out;
    for (int i = 0; i < count; ++i) {
        logging::LogRecord record;
        record.id = static_cast<logging::RecordId>(i + 1);
        record.timestamp = i * 0.1;
        record.node = nodes[static_cast<std::size_t>(i) % nodes.size()];
        record.service = "nova-api";
        record.level = logging::LogLevel::Info;
        record.body = "step " + std::to_string(i) + " of request "
                      "11111111-2222-3333-4444-555555555555";
        out.push_back(std::move(record));
    }
    return out;
}

std::size_t
countKind(const PerturbedStream &stream, PerturbationKind kind)
{
    std::size_t n = 0;
    for (const PerturbationRecord &event : stream.events) {
        if (event.kind == kind)
            ++n;
    }
    return n;
}

} // namespace

TEST(StreamPerturber, InertConfigIsIdentity)
{
    auto input = makeStream(50, {"controller", "compute-1"});
    PerturbationConfig config;
    EXPECT_TRUE(config.inert());
    PerturbedStream out = StreamPerturber(config).apply(input);
    ASSERT_EQ(out.records.size(), input.size());
    ASSERT_EQ(out.lines.size(), input.size());
    EXPECT_TRUE(out.events.empty());
    for (std::size_t i = 0; i < input.size(); ++i) {
        EXPECT_EQ(out.records[i].id, input[i].id);
        EXPECT_DOUBLE_EQ(out.records[i].timestamp, input[i].timestamp);
        EXPECT_EQ(out.lines[i], logging::encodeLogLine(input[i]));
    }
}

TEST(StreamPerturber, ScaledToZeroIsInert)
{
    PerturbationConfig config;
    config.dropProbability = 0.2;
    config.duplicateProbability = 0.2;
    config.clockSkewMaxSeconds = 1.0;
    config.burstProbability = 0.1;
    EXPECT_FALSE(config.inert());
    EXPECT_TRUE(config.scaled(0.0).inert());
}

TEST(StreamPerturber, DeterministicForEqualSeeds)
{
    auto input = makeStream(200, {"controller", "compute-1"});
    PerturbationConfig config;
    config.dropProbability = 0.05;
    config.duplicateProbability = 0.05;
    config.truncateProbability = 0.05;
    config.corruptProbability = 0.05;
    config.clockSkewMaxSeconds = 0.2;
    config.seed = 31;
    PerturbedStream a = StreamPerturber(config).apply(input);
    PerturbedStream b = StreamPerturber(config).apply(input);
    ASSERT_EQ(a.lines.size(), b.lines.size());
    for (std::size_t i = 0; i < a.lines.size(); ++i)
        EXPECT_EQ(a.lines[i], b.lines[i]);
    EXPECT_EQ(a.events.size(), b.events.size());
}

TEST(StreamPerturber, DropsAreGroundTruthed)
{
    auto input = makeStream(400, {"controller"});
    PerturbationConfig config;
    config.dropProbability = 0.1;
    config.seed = 5;
    PerturbedStream out = StreamPerturber(config).apply(input);
    EXPECT_GT(out.dropped, 0u);
    EXPECT_EQ(out.dropped, countKind(out, PerturbationKind::Drop));
    EXPECT_EQ(out.records.size(), input.size() - out.dropped);

    // Every dropped id is named in the ground truth and absent from
    // the output.
    std::set<logging::RecordId> surviving;
    for (const logging::LogRecord &record : out.records)
        surviving.insert(record.id);
    for (const PerturbationRecord &event : out.events) {
        if (event.kind == PerturbationKind::Drop) {
            EXPECT_EQ(surviving.count(event.record), 0u);
        }
    }
}

TEST(StreamPerturber, DuplicatesShareIdAndArriveLater)
{
    auto input = makeStream(300, {"controller"});
    PerturbationConfig config;
    config.duplicateProbability = 0.1;
    config.seed = 8;
    PerturbedStream out = StreamPerturber(config).apply(input);
    EXPECT_GT(out.duplicated, 0u);
    EXPECT_EQ(out.duplicated,
              countKind(out, PerturbationKind::Duplicate));
    EXPECT_EQ(out.records.size(), input.size() + out.duplicated);

    // A duplicated id appears exactly twice, the re-delivery after
    // the original.
    std::map<logging::RecordId, int> seen;
    for (const logging::LogRecord &record : out.records)
        ++seen[record.id];
    std::size_t twice = 0;
    for (auto [id, count] : seen) {
        EXPECT_LE(count, 2);
        if (count == 2)
            ++twice;
    }
    EXPECT_EQ(twice, out.duplicated);
}

TEST(StreamPerturber, ClockSkewIsPerNodeAndBounded)
{
    auto input = makeStream(100, {"controller", "compute-1"});
    PerturbationConfig config;
    config.clockSkewMaxSeconds = 0.05;
    config.seed = 13;
    PerturbedStream out = StreamPerturber(config).apply(input);
    ASSERT_EQ(out.records.size(), input.size());
    ASSERT_EQ(out.nodeSkew.size(), 2u);
    for (auto [node, skew] : out.nodeSkew)
        EXPECT_LE(std::abs(skew), 0.05);
    // With no drift, every record of a node shifts by that node's
    // constant offset.
    for (std::size_t i = 0; i < input.size(); ++i) {
        double shift = out.records[i].timestamp - input[i].timestamp;
        EXPECT_NEAR(shift, out.nodeSkew.at(input[i].node), 1e-12);
    }
}

TEST(StreamPerturber, BurstLossDropsContiguousRuns)
{
    auto input = makeStream(500, {"controller"});
    PerturbationConfig config;
    config.burstProbability = 0.01;
    config.burstLengthMin = 5;
    config.burstLengthMax = 10;
    config.seed = 21;
    PerturbedStream out = StreamPerturber(config).apply(input);
    std::size_t bursts = countKind(out, PerturbationKind::BurstLoss);
    ASSERT_GT(bursts, 0u);
    EXPECT_GE(out.dropped, bursts * 5u);

    // Ids are contiguous in the input, so a burst shows up as a gap
    // of at least burstLengthMin consecutive missing ids.
    std::set<logging::RecordId> surviving;
    for (const logging::LogRecord &record : out.records)
        surviving.insert(record.id);
    for (const PerturbationRecord &event : out.events) {
        if (event.kind != PerturbationKind::BurstLoss)
            continue;
        auto length = static_cast<logging::RecordId>(event.amount);
        for (logging::RecordId id = event.record;
             id < event.record + length && id <= input.size(); ++id) {
            EXPECT_EQ(surviving.count(id), 0u)
                << "record " << id << " inside a loss burst survived";
        }
    }
}

TEST(StreamPerturber, TruncationMakesLinesUnparseableOrShort)
{
    auto input = makeStream(300, {"controller"});
    PerturbationConfig config;
    config.truncateProbability = 0.2;
    config.seed = 34;
    PerturbedStream out = StreamPerturber(config).apply(input);
    EXPECT_GT(out.truncated, 0u);
    EXPECT_EQ(out.truncated, countKind(out, PerturbationKind::Truncate));
    // Records are untouched on the record path; only lines suffer.
    ASSERT_EQ(out.records.size(), out.lines.size());
    std::size_t shorter = 0;
    for (std::size_t i = 0; i < out.lines.size(); ++i) {
        std::string full = logging::encodeLogLine(out.records[i]);
        if (out.lines[i].size() < full.size())
            ++shorter;
    }
    EXPECT_EQ(shorter, out.truncated);
}

TEST(StreamPerturber, CorruptionKeepsLineLength)
{
    auto input = makeStream(300, {"controller"});
    PerturbationConfig config;
    config.corruptProbability = 0.2;
    config.seed = 55;
    PerturbedStream out = StreamPerturber(config).apply(input);
    EXPECT_GT(out.corrupted, 0u);
    EXPECT_EQ(out.corrupted, countKind(out, PerturbationKind::Corrupt));
    std::size_t mangled = 0;
    for (std::size_t i = 0; i < out.lines.size(); ++i) {
        std::string full = logging::encodeLogLine(out.records[i]);
        ASSERT_EQ(out.lines[i].size(), full.size());
        if (out.lines[i] != full) {
            ++mangled;
            EXPECT_NE(out.lines[i].find('#'), std::string::npos);
        }
    }
    EXPECT_EQ(mangled, out.corrupted);
}

TEST(StreamPerturber, KindNamesAreStable)
{
    EXPECT_STREQ(perturbationKindName(PerturbationKind::Drop), "DROP");
    EXPECT_STREQ(perturbationKindName(PerturbationKind::BurstLoss),
                 "BURST-LOSS");
    EXPECT_STREQ(perturbationKindName(PerturbationKind::ClockSkew),
                 "CLOCK-SKEW");
}
