/**
 * @file
 * Tests for the hardened monitor ingest pipeline: malformed-line
 * quarantine, the non-monotonic timestamp guard, near-duplicate
 * suppression, the reorder buffer, group-cap shedding, and the
 * bit-identical pass-through guarantee of the default configuration.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/monitor/report_json.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "logging/log_codec.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

namespace {

/** Fixture over the two-step ping/pong workflow from monitor_test. */
class IngestTest : public ::testing::Test
{
  protected:
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();
    logging::RecordId nextRecord = 1;

    std::unique_ptr<WorkflowMonitor>
    makeMonitor(const IngestConfig &ingest,
                double timeout_seconds = 10.0)
    {
        MonitorConfig config;
        config.timeoutSeconds = timeout_seconds;
        config.ingest = ingest;
        return std::make_unique<WorkflowMonitor>(config, catalog,
                                                 automata());
    }

    std::vector<TaskAutomaton>
    automata()
    {
        logging::TemplateId ping = catalog->intern("svc-a",
                                                   "ping <uuid>");
        logging::TemplateId pong = catalog->intern("svc-b",
                                                   "pong <uuid>");
        std::vector<EventNode> events = {{ping, 0}, {pong, 0}};
        std::vector<DependencyEdge> edges = {{0, 1, true}};
        std::vector<TaskAutomaton> out;
        out.emplace_back("ping-pong", std::move(events),
                         std::move(edges));
        return out;
    }

    logging::LogRecord
    record(const std::string &service, const std::string &body,
           double t, logging::LogLevel level = logging::LogLevel::Info)
    {
        logging::LogRecord out;
        out.id = nextRecord++;
        out.timestamp = t;
        out.node = "controller";
        out.service = service;
        out.level = level;
        out.body = body;
        return out;
    }

    static std::string
    uuid(int which)
    {
        char buf[37];
        std::snprintf(buf, sizeof buf,
                      "%08d-1111-2222-3333-444444444444", which);
        return buf;
    }

    logging::LogRecord
    ping(int which, double t)
    {
        return record("svc-a", "ping " + uuid(which), t);
    }

    logging::LogRecord
    pong(int which, double t)
    {
        return record("svc-b", "pong " + uuid(which), t);
    }
};

} // namespace

// --- Malformed-line quarantine ------------------------------------

TEST_F(IngestTest, MalformedLinesAreCountedByCause)
{
    auto monitor = makeMonitor(IngestConfig{});
    std::string good = logging::encodeLogLine(ping(1, 1.0));

    // Bad timestamp: the date tokens do not parse.
    std::string bad_stamp = good;
    bad_stamp.replace(0, 10, "XXXX-YY-ZZ");
    EXPECT_TRUE(monitor->feedLine(bad_stamp).empty());

    // Bad header: a level token that names no level.
    std::string bad_level =
        good.substr(0, good.find(" INFO ")) + " LOUD ping x";
    EXPECT_TRUE(monitor->feedLine(bad_level).empty());

    // Truncated payload: a clean timestamp with the tail cut off.
    std::string truncated = good.substr(0, good.find("svc-a") + 5);
    EXPECT_TRUE(monitor->feedLine(truncated).empty());

    const IngestStats &stats = monitor->ingestStats();
    EXPECT_EQ(stats.linesSeen, 3u);
    EXPECT_EQ(stats.malformedBadTimestamp, 1u);
    EXPECT_EQ(stats.malformedBadHeader, 1u);
    EXPECT_EQ(stats.malformedTruncatedPayload, 1u);
    EXPECT_EQ(stats.malformed(), 3u);
    EXPECT_EQ(monitor->malformedLines(), 3u);
    EXPECT_EQ(stats.recordsDelivered, 0u);

    // The quarantine retains the raw lines with their causes.
    ASSERT_EQ(monitor->quarantine().size(), 3u);
    EXPECT_EQ(monitor->quarantine()[0].line, bad_stamp);
    EXPECT_EQ(monitor->quarantine()[0].cause,
              logging::DecodeFailure::BadTimestamp);
    EXPECT_EQ(monitor->quarantine()[1].cause,
              logging::DecodeFailure::BadHeader);
    EXPECT_EQ(monitor->quarantine()[2].cause,
              logging::DecodeFailure::TruncatedPayload);
}

TEST_F(IngestTest, QuarantineSampleIsBounded)
{
    IngestConfig ingest;
    ingest.quarantineSampleCap = 2;
    auto monitor = makeMonitor(ingest);
    for (int i = 0; i < 5; ++i)
        monitor->feedLine("garbage line " + std::to_string(i));
    EXPECT_EQ(monitor->ingestStats().malformed(), 5u);
    EXPECT_EQ(monitor->quarantine().size(), 2u)
        << "counting is unbounded, retention is not";
}

TEST_F(IngestTest, TruncatedWireLineLandsInQuarantine)
{
    auto monitor = makeMonitor(IngestConfig{});
    std::string good = logging::encodeLogLine(ping(1, 1.0));
    // Cut inside the body: still parseable, so it is delivered (the
    // checker sees a mangled message, not the quarantine).
    std::string cut_body = good.substr(0, good.size() - 4);
    monitor->feedLine(cut_body);
    EXPECT_EQ(monitor->ingestStats().recordsDelivered, 1u);
    // Cut inside the header: quarantined as a truncation artefact.
    std::string cut_header = good.substr(0, 28);
    monitor->feedLine(cut_header);
    EXPECT_EQ(monitor->ingestStats().malformedTruncatedPayload, 1u);
}

// --- Non-monotonic timestamp guard --------------------------------

TEST_F(IngestTest, BackwardsStampMustNotRetroactivelyFireTimeout)
{
    // Regression: a record stamped far in the past used to plant its
    // group back at that stamp, so the very next sweep would "time
    // out" work that had been active for milliseconds.
    IngestConfig ingest;
    ingest.clampNonMonotonic = true;
    auto monitor = makeMonitor(ingest);

    monitor->feed(ping(1, 100.0));
    // Backwards by 95 s (for example a node whose NTP just stepped).
    EXPECT_TRUE(monitor->feed(ping(2, 5.0)).empty());
    EXPECT_EQ(monitor->ingestStats().nonMonotonicClamped, 1u);
    EXPECT_DOUBLE_EQ(monitor->ingestStats().maxRegressionSeconds,
                     95.0);

    // 5 s later (well under the 10 s timeout): neither group may
    // fire. Unclamped, the uuid(2) group would sit at t=5 and be 100 s
    // "old" already.
    auto reports = monitor->feed(ping(3, 105.0));
    EXPECT_TRUE(reports.empty())
        << "clamped group timed out retroactively";
    EXPECT_EQ(monitor->activeGroups(), 3u);

    // ... and the clamp must not *suppress* the criterion either: by
    // t=120 all three groups are genuinely stale.
    auto late = monitor->feed(record("svc-c", "noise", 120.0));
    EXPECT_EQ(late.size(), 3u);
    for (const MonitorReport &report : late)
        EXPECT_EQ(report.event.kind, CheckEventKind::Timeout);
}

TEST_F(IngestTest, UnclampedGuardCountsButDoesNotIntervene)
{
    // Default config: the hazard is visible (counted) but behavior is
    // exactly the unhardened path — the backwards group really does
    // fire retroactively.
    auto monitor = makeMonitor(IngestConfig{});
    monitor->feed(ping(1, 100.0));
    monitor->feed(ping(2, 5.0));
    EXPECT_EQ(monitor->ingestStats().nonMonotonicClamped, 1u);
    auto reports = monitor->feed(ping(3, 105.0));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Timeout);
}

// --- Near-duplicate suppression -----------------------------------

TEST_F(IngestTest, DedupSuppressesExactRedeliveries)
{
    IngestConfig ingest;
    ingest.dedupWindowSeconds = 5.0;
    auto monitor = makeMonitor(ingest);

    logging::LogRecord first = ping(1, 1.0);
    monitor->feed(first);
    monitor->feed(first); // at-least-once shipper re-delivery
    EXPECT_EQ(monitor->ingestStats().duplicatesSuppressed, 1u);
    EXPECT_EQ(monitor->activeGroups(), 1u);

    auto reports = monitor->feed(pong(1, 2.0));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Accepted);
    EXPECT_EQ(monitor->stats().accepted, 1u);
}

TEST_F(IngestTest, DedupSparesGenuineRepeats)
{
    IngestConfig ingest;
    ingest.dedupWindowSeconds = 5.0;
    auto monitor = makeMonitor(ingest);
    // Same template and identifier, different timestamps: a genuine
    // repeat, not a re-delivery.
    monitor->feed(ping(1, 1.0));
    monitor->feed(ping(1, 1.5));
    EXPECT_EQ(monitor->ingestStats().duplicatesSuppressed, 0u);
    EXPECT_EQ(monitor->ingestStats().recordsDelivered, 2u);
}

TEST_F(IngestTest, DedupWindowExpires)
{
    IngestConfig ingest;
    ingest.dedupWindowSeconds = 2.0;
    auto monitor = makeMonitor(ingest, 1000.0);
    logging::LogRecord first = ping(1, 1.0);
    monitor->feed(first);
    monitor->feed(record("svc-c", "noise", 10.0)); // advance the clock
    // The key expired with the window, so an identical record is
    // delivered again rather than suppressed.
    monitor->feed(first);
    EXPECT_EQ(monitor->ingestStats().duplicatesSuppressed, 0u);
    EXPECT_EQ(monitor->ingestStats().recordsDelivered, 3u);
}

// --- Reorder buffer -----------------------------------------------

TEST_F(IngestTest, ReorderBufferRepairsInversionWithinWindow)
{
    IngestConfig ingest;
    ingest.reorderWindowSeconds = 1.0;
    auto monitor = makeMonitor(ingest);

    std::vector<MonitorReport> reports;
    // Arrival order inverts the causal order by 0.1 s.
    for (auto r : monitor->feed(pong(1, 2.0)))
        reports.push_back(std::move(r));
    for (auto r : monitor->feed(ping(1, 1.9)))
        reports.push_back(std::move(r));
    // A later record moves the watermark past both.
    for (auto r : monitor->feed(record("svc-c", "noise", 5.0)))
        reports.push_back(std::move(r));
    for (auto r : monitor->finish())
        reports.push_back(std::move(r));

    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Accepted);
    EXPECT_EQ(monitor->stats().accepted, 1u);
    EXPECT_GE(monitor->ingestStats().reorderBufferPeak, 2u);
}

TEST_F(IngestTest, ReorderBufferOverflowForcesRelease)
{
    IngestConfig ingest;
    ingest.reorderWindowSeconds = 1000.0; // watermark never ripens
    ingest.reorderBufferCap = 2;
    auto monitor = makeMonitor(ingest, 1e6);
    for (int i = 0; i < 5; ++i)
        monitor->feed(ping(i + 1, 1.0 + 0.1 * i));
    EXPECT_EQ(monitor->ingestStats().forcedReleases, 3u);
    EXPECT_EQ(monitor->ingestStats().recordsDelivered, 3u);
    monitor->finish();
    EXPECT_EQ(monitor->ingestStats().recordsDelivered, 5u)
        << "finish must flush the buffer";
}

// --- Group-cap shedding -------------------------------------------

TEST_F(IngestTest, GroupCapShedsOldestAndEmitsDegraded)
{
    IngestConfig ingest;
    ingest.maxActiveGroups = 3;
    auto monitor = makeMonitor(ingest, 1000.0);

    std::vector<MonitorReport> degraded;
    for (int i = 0; i < 6; ++i) {
        for (auto r : monitor->feed(ping(i + 1, 1.0 + 0.1 * i))) {
            ASSERT_EQ(r.event.kind, CheckEventKind::Degraded);
            degraded.push_back(std::move(r));
        }
        EXPECT_LE(monitor->activeGroups(), 3u)
            << "cap exceeded after feeding ping " << i + 1;
    }
    // Every shed group is accounted for by exactly one Degraded
    // report.
    EXPECT_EQ(degraded.size(), 3u);
    EXPECT_EQ(monitor->ingestStats().groupsShed, 3u);
    EXPECT_EQ(monitor->stats().groupsShed, 3u);

    // The survivors are the youngest: their pongs still complete.
    std::size_t accepted = 0;
    for (int i = 3; i < 6; ++i) {
        for (auto &r : monitor->feed(pong(i + 1, 2.0 + 0.1 * i))) {
            if (r.event.kind == CheckEventKind::Accepted)
                ++accepted;
        }
    }
    EXPECT_EQ(accepted, 3u);
}

TEST_F(IngestTest, DegradedReportRendersAsHealthSignal)
{
    IngestConfig ingest;
    ingest.maxActiveGroups = 1;
    auto monitor = makeMonitor(ingest, 1000.0);
    monitor->feed(ping(1, 1.0));
    auto reports = monitor->feed(ping(2, 1.1));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Degraded);
    std::string summary = reports[0].summary(monitor->catalog());
    EXPECT_NE(summary.find("DEGRADED"), std::string::npos);
    std::string json = reportToJson(reports[0], monitor->catalog());
    EXPECT_NE(json.find("\"kind\":\"DEGRADED\""), std::string::npos);
}

// --- Pass-through guarantee ---------------------------------------

TEST_F(IngestTest, CleanStreamReportsBitIdenticalAcrossProfiles)
{
    // Acceptance criterion: on a clean, timestamp-ordered stream the
    // hardened profile must produce exactly the report sequence of
    // the default (unhardened) path — every guard passes through.
    auto plain = makeMonitor(IngestConfig{});
    auto hardened = makeMonitor(hardenedIngestDefaults());

    std::vector<logging::LogRecord> stream;
    double t = 0.0;
    for (int i = 0; i < 60; ++i) {
        int id = i + 1;
        stream.push_back(ping(id, t += 0.05));
        if (i % 2 == 1) { // interleave: close two sequences together
            stream.push_back(pong(id - 1, t += 0.05));
            stream.push_back(pong(id, t += 0.05));
        }
        if (i % 7 == 0) // some sequences never finish -> timeouts
            stream.back().body = "unrelated chatter";
        if (i % 11 == 0)
            stream.push_back(record("svc-c", "noise", t += 0.05));
    }

    auto collect = [&](WorkflowMonitor &monitor) {
        std::vector<std::string> out;
        for (const logging::LogRecord &r : stream) {
            for (const MonitorReport &report : monitor.feed(r))
                out.push_back(reportToJson(report, monitor.catalog()));
        }
        for (const MonitorReport &report : monitor.finish())
            out.push_back(reportToJson(report, monitor.catalog()));
        return out;
    };

    std::vector<std::string> plain_reports = collect(*plain);
    std::vector<std::string> hardened_reports = collect(*hardened);
    ASSERT_FALSE(plain_reports.empty());
    ASSERT_EQ(plain_reports.size(), hardened_reports.size());
    for (std::size_t i = 0; i < plain_reports.size(); ++i)
        EXPECT_EQ(plain_reports[i], hardened_reports[i]) << "at " << i;

    // And the guards confirm they never intervened.
    const IngestStats &stats = hardened->ingestStats();
    EXPECT_EQ(stats.duplicatesSuppressed, 0u);
    EXPECT_EQ(stats.groupsShed, 0u);
    EXPECT_EQ(stats.forcedReleases, 0u);
    EXPECT_EQ(stats.nonMonotonicClamped, 0u);
}
