/**
 * @file
 * Shared helpers for the test suite: tiny catalogs and hand-built
 * automata over single-letter templates.
 */

#ifndef CLOUDSEER_TESTS_TEST_UTIL_HPP
#define CLOUDSEER_TESTS_TEST_UTIL_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/automaton/task_automaton.hpp"
#include "core/checker/check_types.hpp"
#include "logging/identifier_interner.hpp"
#include "logging/template_catalog.hpp"

namespace cloudseer::testutil {

/** Catalog plus name->id map for letter templates ("A", "B", ...). */
struct LetterCatalog
{
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();
    std::map<std::string, logging::TemplateId> ids;

    /** Intern (or fetch) a letter template under service "svc". */
    logging::TemplateId
    id(const std::string &letter)
    {
        auto it = ids.find(letter);
        if (it != ids.end())
            return it->second;
        logging::TemplateId tpl = catalog->intern("svc", letter);
        ids.emplace(letter, tpl);
        return tpl;
    }
};

/**
 * Build an automaton over letter templates from an edge list like
 * {{"A","B"},{"B","C"}}. Every letter mentioned becomes one event
 * (occurrence 0).
 */
inline core::TaskAutomaton
makeLetterAutomaton(LetterCatalog &letters, const std::string &name,
                    const std::vector<std::string> &nodes,
                    const std::vector<std::pair<std::string,
                                                std::string>> &edges)
{
    std::map<std::string, int> index;
    std::vector<core::EventNode> events;
    for (const std::string &node : nodes) {
        index[node] = static_cast<int>(events.size());
        events.push_back({letters.id(node), 0});
    }
    std::vector<core::DependencyEdge> built;
    for (const auto &[from, to] : edges)
        built.push_back({index.at(from), index.at(to), false});
    return core::TaskAutomaton(name, std::move(events), std::move(built));
}

/** Intern identifier strings the way the monitor does at extraction. */
inline std::vector<logging::IdToken>
internIds(const std::vector<std::string> &identifiers)
{
    std::vector<logging::IdToken> tokens;
    tokens.reserve(identifiers.size());
    for (const std::string &id : identifiers)
        tokens.push_back(logging::IdentifierInterner::process().intern(id));
    return tokens;
}

/** Build a CheckMessage over a letter template with identifiers. */
inline core::CheckMessage
makeMessage(LetterCatalog &letters, const std::string &letter,
            const std::vector<std::string> &identifiers,
            logging::RecordId record, common::SimTime time,
            logging::LogLevel level = logging::LogLevel::Info)
{
    core::CheckMessage message;
    message.tpl = letters.id(letter);
    message.identifiers = internIds(identifiers);
    message.record = record;
    message.time = time;
    message.level = level;
    return message;
}

} // namespace cloudseer::testutil

#endif // CLOUDSEER_TESTS_TEST_UTIL_HPP
