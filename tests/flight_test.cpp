/**
 * @file
 * Tests for seer-flight (DESIGN.md §12): latency-profile mining and
 * quantile math, model-file persistence, the SL010 lint pass, the
 * checker's latency-anomaly criterion, the flight recorder's bounded
 * rings and forensic bundles, and the monitor-level null-sink pin.
 *
 * Two fixtures carry golden or statistical weight:
 *   - tests/golden/report_stream.jsonl pins the VERDICT wire format
 *     (including the start/duration fields and the latency object);
 *     regenerate with CLOUDSEER_UPDATE_GOLDEN=1.
 *   - LatencyEval.PrecisionAndRecallOnDelayFaults asserts the paper
 *     acceptance bar (both >= 0.9 at the default p99 policy).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "analysis/model_lint.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/mining/latency_profile.hpp"
#include "core/mining/model_io.hpp"
#include "core/monitor/report_json.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/latency_harness.hpp"
#include "obs/flight_recorder.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

// --- Quantile math -------------------------------------------------

TEST(LatencyStatsTest, NearestRankQuantiles)
{
    // 100 samples 1..100: nearest-rank pN is exactly N.
    std::vector<double> samples;
    for (int v = 100; v >= 1; --v)
        samples.push_back(static_cast<double>(v));
    LatencyStats stats = summarizeLatencies(samples);
    EXPECT_EQ(stats.count, 100u);
    EXPECT_DOUBLE_EQ(stats.p50, 50.0);
    EXPECT_DOUBLE_EQ(stats.p95, 95.0);
    EXPECT_DOUBLE_EQ(stats.p99, 99.0);
    EXPECT_DOUBLE_EQ(stats.maxSeen, 100.0);
    EXPECT_TRUE(stats.wellFormed());
}

TEST(LatencyStatsTest, SmallSampleSetsRoundUp)
{
    // Nearest rank with 3 samples: p50 -> rank 2, p95/p99 -> rank 3.
    LatencyStats stats = summarizeLatencies({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(stats.p50, 2.0);
    EXPECT_DOUBLE_EQ(stats.p95, 3.0);
    EXPECT_DOUBLE_EQ(stats.p99, 3.0);
    EXPECT_DOUBLE_EQ(stats.maxSeen, 3.0);
}

TEST(LatencyStatsTest, EmptyInputIsWellFormedZero)
{
    LatencyStats stats = summarizeLatencies({});
    EXPECT_EQ(stats.count, 0u);
    EXPECT_TRUE(stats.wellFormed());
}

TEST(LatencyStatsTest, AtResolvesUnsupportedQuantilesUpward)
{
    LatencyStats stats;
    stats.count = 4;
    stats.p50 = 1.0;
    stats.p95 = 2.0;
    stats.p99 = 3.0;
    stats.maxSeen = 4.0;
    EXPECT_DOUBLE_EQ(stats.at(50), 1.0);
    EXPECT_DOUBLE_EQ(stats.at(90), 2.0); // conservative: next one up
    EXPECT_DOUBLE_EQ(stats.at(95), 2.0);
    EXPECT_DOUBLE_EQ(stats.at(99), 3.0);
    EXPECT_DOUBLE_EQ(stats.at(100), 4.0);
}

TEST(LatencyStatsTest, BudgetIsQuantileTimesFactorPlusSlack)
{
    LatencyStats stats;
    stats.count = 10;
    stats.p99 = 2.0;
    stats.maxSeen = 3.0;
    LatencyCheckConfig policy; // p99 * 1.5 + 0.5
    EXPECT_DOUBLE_EQ(latencyBudget(stats, policy), 3.5);

    LatencyStats empty;
    EXPECT_DOUBLE_EQ(latencyBudget(empty, policy), -1.0);
}

// --- Profile mining ------------------------------------------------

namespace {

core::TimedSequence
timed(testutil::LetterCatalog &letters,
      const std::vector<std::pair<std::string, double>> &messages)
{
    core::TimedSequence out;
    for (const auto &[letter, time] : messages)
        out.push_back({letters.id(letter), time});
    return out;
}

} // namespace

TEST(MineLatencyProfileTest, LinearChainEdgesAndTotal)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "abc", {"A", "B", "C"}, {{"A", "B"}, {"B", "C"}});

    std::vector<core::TimedSequence> runs = {
        timed(letters, {{"A", 1.0}, {"B", 2.0}, {"C", 4.0}}),
        timed(letters, {{"A", 0.0}, {"B", 3.0}, {"C", 3.5}}),
    };
    LatencyProfile profile = mineLatencyProfile(automaton, runs);

    EXPECT_EQ(profile.task, "abc");
    EXPECT_EQ(profile.runs, 2u);
    ASSERT_EQ(profile.edges.size(), 2u);
    const LatencyStats &ab = profile.edges.at({0, 1});
    EXPECT_EQ(ab.count, 2u);
    EXPECT_DOUBLE_EQ(ab.p50, 1.0);
    EXPECT_DOUBLE_EQ(ab.maxSeen, 3.0);
    const LatencyStats &bc = profile.edges.at({1, 2});
    EXPECT_DOUBLE_EQ(bc.p50, 0.5);
    EXPECT_DOUBLE_EQ(bc.maxSeen, 2.0);
    EXPECT_DOUBLE_EQ(profile.total.p50, 3.0);
    EXPECT_DOUBLE_EQ(profile.total.maxSeen, 3.5);
    EXPECT_TRUE(profile.hasSamples());
}

TEST(MineLatencyProfileTest, TruncatedRunsAndNoiseAreSkipped)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "ab", {"A", "B"}, {{"A", "B"}});

    std::vector<core::TimedSequence> runs = {
        // Noise template Z routes away exactly as in checking.
        timed(letters, {{"A", 0.0}, {"Z", 0.5}, {"B", 2.0}}),
        // Truncated: never accepts, must contribute no samples.
        timed(letters, {{"A", 0.0}}),
    };
    LatencyProfile profile = mineLatencyProfile(automaton, runs);
    EXPECT_EQ(profile.runs, 1u);
    EXPECT_EQ(profile.edges.at({0, 1}).count, 1u);
    EXPECT_DOUBLE_EQ(profile.edges.at({0, 1}).p50, 2.0);
}

TEST(MineLatencyProfileTest, ReorderedTimestampsClampToZero)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "ab", {"A", "B"}, {{"A", "B"}});
    // Shipping skew put B's stamp before A's: the edge reads 0, never
    // a negative latency.
    LatencyProfile profile = mineLatencyProfile(
        automaton, {timed(letters, {{"A", 5.0}, {"B", 4.5}})});
    EXPECT_DOUBLE_EQ(profile.edges.at({0, 1}).p50, 0.0);
}

TEST(MineLatencyProfileTest, ForkBranchesProfileIndependently)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "fork", {"A", "B", "C", "D"},
        {{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}});

    // B's branch is consistently fast, C's consistently slow: the
    // join's in-edges must keep separate distributions.
    std::vector<core::TimedSequence> runs = {
        timed(letters, {{"A", 0.0}, {"B", 0.1}, {"C", 3.0}, {"D", 3.2}}),
        timed(letters, {{"A", 0.0}, {"B", 0.2}, {"C", 4.0}, {"D", 4.1}}),
    };
    LatencyProfile profile = mineLatencyProfile(automaton, runs);
    ASSERT_EQ(profile.edges.size(), 4u);
    EXPECT_NEAR(profile.edges.at({0, 1}).maxSeen, 0.2, 1e-9); // A->B
    EXPECT_NEAR(profile.edges.at({0, 2}).maxSeen, 4.0, 1e-9); // A->C
    EXPECT_NEAR(profile.edges.at({2, 3}).maxSeen, 0.2, 1e-9); // C->D
}

// --- Model-file persistence ----------------------------------------

TEST(ModelIoLatencyTest, ProfilesRoundTripBitIdentically)
{
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId a = catalog->intern("svc", "alpha <uuid>");
    logging::TemplateId b = catalog->intern("svc", "beta <uuid>");
    std::vector<EventNode> events = {{a, 0}, {b, 0}};
    std::vector<DependencyEdge> edges = {{0, 1, true}};
    std::vector<TaskAutomaton> automata;
    automata.emplace_back("pair", std::move(events), std::move(edges));

    LatencyProfile profile;
    profile.task = "pair";
    profile.runs = 17;
    // Deliberately awkward doubles: %.17g must reproduce them exactly.
    profile.total = {17, 0.1 + 0.2, 1.0 / 3.0, 2.0 / 3.0, 0.7000000001};
    profile.edges[{0, 1}] = {17, 0.1, 0.30000000000000004, 0.5, 0.9};

    std::ostringstream out;
    saveModels(out, *catalog, automata, {profile});
    std::optional<ModelBundle> bundle =
        loadModelsFromString(out.str());
    ASSERT_TRUE(bundle.has_value());
    ASSERT_EQ(bundle->profiles.size(), 1u);
    EXPECT_EQ(bundle->profiles[0], profile);
}

TEST(ModelIoLatencyTest, LegacyFilesLoadWithEmptyProfiles)
{
    auto catalog = std::make_shared<logging::TemplateCatalog>();
    logging::TemplateId a = catalog->intern("svc", "alpha <uuid>");
    std::vector<EventNode> events = {{a, 0}};
    std::vector<TaskAutomaton> automata;
    automata.emplace_back("solo", std::move(events),
                          std::vector<DependencyEdge>{});

    std::ostringstream out;
    saveModels(out, *catalog, automata); // pre-seer-flight writer
    std::optional<ModelBundle> bundle =
        loadModelsFromString(out.str());
    ASSERT_TRUE(bundle.has_value());
    EXPECT_TRUE(bundle->profiles.empty());
}

// --- SL010 lint ----------------------------------------------------

namespace {

struct LintFixture
{
    testutil::LetterCatalog letters;
    std::vector<TaskAutomaton> automata;

    LintFixture()
    {
        automata.push_back(testutil::makeLetterAutomaton(
            letters, "ab", {"A", "B"}, {{"A", "B"}}));
    }

    LatencyProfile
    goodProfile()
    {
        LatencyProfile profile;
        profile.task = "ab";
        profile.runs = 5;
        profile.total = {5, 1.0, 2.0, 2.0, 2.5};
        profile.edges[{0, 1}] = {5, 1.0, 2.0, 2.0, 2.5};
        return profile;
    }
};

} // namespace

TEST(LintLatencyTest, CleanProfileHasNoFindings)
{
    LintFixture f;
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {f.goodProfile()});
    EXPECT_TRUE(report.diagnostics.empty());
}

TEST(LintLatencyTest, ProfileNamingNoAutomatonIsAnError)
{
    LintFixture f;
    LatencyProfile stale = f.goodProfile();
    stale.task = "renamed-task";
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {stale});
    EXPECT_TRUE(report.hasErrors());
    // And "ab" itself is now unprofiled: warned, not errored.
    EXPECT_EQ(report.count(analysis::Severity::Warning), 1u);
    EXPECT_EQ(report.withId("SL010").size(),
              report.diagnostics.size());
}

TEST(LintLatencyTest, TimingForNonexistentEdgeIsAnError)
{
    LintFixture f;
    LatencyProfile profile = f.goodProfile();
    profile.edges.erase({0, 1});
    profile.edges[{1, 0}] = {5, 1.0, 2.0, 2.0, 2.5}; // reversed edge
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {profile});
    EXPECT_TRUE(report.hasErrors());
}

TEST(LintLatencyTest, NonMonotoneQuantilesAreAnError)
{
    LintFixture f;
    LatencyProfile profile = f.goodProfile();
    profile.total.p95 = 0.5; // p50 > p95
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {profile});
    EXPECT_TRUE(report.hasErrors());
}

TEST(LintLatencyTest, PartialEdgeCoverageWarns)
{
    LintFixture f;
    LatencyProfile profile = f.goodProfile();
    profile.edges.clear(); // total sampled, no edge coverage
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {profile});
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(report.count(analysis::Severity::Warning), 1u);
}

TEST(LintLatencyTest, UnsampledProfileCountsAsUnprofiled)
{
    LintFixture f;
    LatencyProfile empty;
    empty.task = "ab";
    analysis::LintReport report =
        analysis::lintLatencyProfiles(f.automata, {empty});
    EXPECT_FALSE(report.hasErrors());
    EXPECT_EQ(report.count(analysis::Severity::Warning), 1u);
}

// --- Checker latency criterion -------------------------------------

namespace {

struct LatencyChecker
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton;
    InterleavedChecker checker;

    explicit LatencyChecker(const LatencyCheckConfig &policy,
                            double max_total = 1.0)
        : automaton(testutil::makeLetterAutomaton(
              letters, "ab", {"A", "B"}, {{"A", "B"}})),
          checker(CheckerConfig{}, {&automaton})
    {
        LatencyProfile profile;
        profile.task = "ab";
        profile.runs = 4;
        profile.total = {4, max_total / 2.0, max_total, max_total,
                         max_total};
        profile.edges[{0, 1}] = profile.total;
        checker.setLatencyPolicy({profile}, policy);
    }
};

LatencyCheckConfig
strictPolicy()
{
    // budget == maxSeen exactly: anomalous iff strictly slower than
    // anything seen in training.
    LatencyCheckConfig policy;
    policy.quantile = 100;
    policy.factor = 1.0;
    policy.slackSeconds = 0.0;
    return policy;
}

} // namespace

TEST(CheckerLatencyTest, FastExecutionAcceptsWithAnnotations)
{
    LatencyChecker t(strictPolicy());
    t.checker.feed(testutil::makeMessage(t.letters, "A", {"u1"}, 1, 1.0));
    std::vector<CheckEvent> events = t.checker.feed(
        testutil::makeMessage(t.letters, "B", {"u1"}, 2, 1.5));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Accepted);
    // The accept is annotated even when on time: operators get the
    // timing breakdown either way.
    EXPECT_DOUBLE_EQ(events[0].totalElapsed, 0.5);
    EXPECT_DOUBLE_EQ(events[0].totalBudget, 1.0);
    ASSERT_EQ(events[0].edgeTimings.size(), 1u);
    EXPECT_FALSE(events[0].edgeTimings[0].exceeded);
    EXPECT_EQ(t.checker.stats().latencyAnomalies, 0u);
}

TEST(CheckerLatencyTest, SlowExecutionBecomesLatencyAnomaly)
{
    LatencyChecker t(strictPolicy());
    t.checker.feed(testutil::makeMessage(t.letters, "A", {"u1"}, 1, 1.0));
    std::vector<CheckEvent> events = t.checker.feed(
        testutil::makeMessage(t.letters, "B", {"u1"}, 2, 3.0));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::LatencyAnomaly);
    EXPECT_DOUBLE_EQ(events[0].totalElapsed, 2.0);
    ASSERT_EQ(events[0].edgeTimings.size(), 1u);
    EXPECT_TRUE(events[0].edgeTimings[0].exceeded);
    ASSERT_EQ(events[0].criticalPath.size(), 2u);
    EXPECT_EQ(events[0].criticalPath[0], 0);
    EXPECT_EQ(events[0].criticalPath[1], 1);
    EXPECT_EQ(t.checker.stats().latencyAnomalies, 1u);
    // The anomaly still counts as an acceptance: the execution is
    // logically complete, just slow.
    EXPECT_EQ(t.checker.stats().accepted, 1u);
}

TEST(CheckerLatencyTest, HeadroomPolicyToleratesModestOverruns)
{
    LatencyCheckConfig generous; // p99 * 1.5 + 0.5: budget 2.0
    LatencyChecker t(generous);
    t.checker.feed(testutil::makeMessage(t.letters, "A", {"u1"}, 1, 1.0));
    std::vector<CheckEvent> events = t.checker.feed(
        testutil::makeMessage(t.letters, "B", {"u1"}, 2, 2.9));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Accepted);
}

TEST(CheckerLatencyTest, TasksWithoutSamplesAreExempt)
{
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "ab", {"A", "B"}, {{"A", "B"}});
    InterleavedChecker checker(CheckerConfig{}, {&automaton});
    LatencyProfile unsampled;
    unsampled.task = "ab";
    checker.setLatencyPolicy({unsampled}, strictPolicy());
    EXPECT_FALSE(checker.latencyPolicyActive());

    checker.feed(testutil::makeMessage(letters, "A", {"u1"}, 1, 1.0));
    std::vector<CheckEvent> events = checker.feed(
        testutil::makeMessage(letters, "B", {"u1"}, 2, 500.0));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, CheckEventKind::Accepted);
    EXPECT_DOUBLE_EQ(events[0].totalBudget, -1.0);
}

// --- Replay property -----------------------------------------------

TEST(CheckerLatencyTest, MinedProfileReplaysToZeroAnomalies)
{
    // Property: a profile mined from a stream, checked at quantile
    // 100 / factor 1 / slack 0 (budget == observed max), must flag
    // nothing when the very same stream is replayed.
    testutil::LetterCatalog letters;
    TaskAutomaton automaton = testutil::makeLetterAutomaton(
        letters, "fork", {"A", "B", "C", "D"},
        {{"A", "B"}, {"A", "C"}, {"B", "D"}, {"C", "D"}});

    std::mt19937 rng(20260806);
    std::uniform_real_distribution<double> gap(0.05, 4.0);
    std::vector<core::TimedSequence> runs;
    double base = 0.0;
    for (int run = 0; run < 50; ++run) {
        double a = base;
        double b = a + gap(rng);
        double c = a + gap(rng);
        double d = std::max(b, c) + gap(rng);
        core::TimedSequence sequence = {{letters.id("A"), a},
                                        {letters.id("B"), b},
                                        {letters.id("C"), c},
                                        {letters.id("D"), d}};
        std::sort(sequence.begin(), sequence.end(),
                  [](const core::TimedTemplate &x,
                     const core::TimedTemplate &y) {
                      return x.time < y.time;
                  });
        runs.push_back(std::move(sequence));
        base = d + 100.0; // keep runs disjoint under the timeout sweep
    }

    LatencyProfile profile = mineLatencyProfile(automaton, runs);
    ASSERT_EQ(profile.runs, 50u);

    InterleavedChecker checker(CheckerConfig{}, {&automaton});
    checker.setLatencyPolicy({profile}, strictPolicy());
    std::size_t accepted = 0;
    for (std::size_t run = 0; run < runs.size(); ++run) {
        std::string id = "run" + std::to_string(run);
        logging::RecordId record = 1;
        for (const core::TimedTemplate &message : runs[run]) {
            CheckMessage check;
            check.tpl = message.tpl;
            check.identifiers = testutil::internIds({id});
            check.record = record++;
            check.time = message.time;
            for (const CheckEvent &event : checker.feed(check)) {
                if (event.kind == CheckEventKind::Accepted)
                    ++accepted;
            }
        }
    }
    EXPECT_EQ(accepted, 50u);
    EXPECT_EQ(checker.stats().latencyAnomalies, 0u);
}

// --- Flight recorder -----------------------------------------------

TEST(FlightRecorderTest, DisabledConfigCapturesNothing)
{
    obs::FlightRecorderConfig config; // perNodeCapacity == 0
    EXPECT_FALSE(config.enabled());
    obs::FlightRecorder recorder(config);
    recorder.record("n1", 1.0, "line");
    EXPECT_EQ(recorder.linesRecorded(), 0u);
    EXPECT_TRUE(recorder.context().empty());
}

TEST(FlightRecorderTest, RingWrapsKeepingNewestLines)
{
    obs::FlightRecorderConfig config;
    config.perNodeCapacity = 3;
    obs::FlightRecorder recorder(config);
    for (int i = 1; i <= 5; ++i)
        recorder.record("n1", static_cast<double>(i),
                        "line" + std::to_string(i));
    EXPECT_EQ(recorder.linesRecorded(), 5u);
    std::vector<obs::ContextLine> context = recorder.context();
    ASSERT_EQ(context.size(), 3u);
    EXPECT_EQ(context[0].line, "line3");
    EXPECT_EQ(context[2].line, "line5");
}

TEST(FlightRecorderTest, ContextMergesNodesInTimeOrder)
{
    obs::FlightRecorderConfig config;
    config.perNodeCapacity = 4;
    obs::FlightRecorder recorder(config);
    recorder.record("compute-1", 2.0, "b");
    recorder.record("controller", 1.0, "a");
    recorder.record("compute-1", 3.0, "c");
    std::vector<obs::ContextLine> context = recorder.context();
    ASSERT_EQ(context.size(), 3u);
    EXPECT_EQ(context[0].line, "a");
    EXPECT_EQ(context[1].line, "b");
    EXPECT_EQ(context[2].line, "c");
}

TEST(FlightRecorderTest, NodeCapDropsRatherThanEvicts)
{
    obs::FlightRecorderConfig config;
    config.perNodeCapacity = 2;
    config.maxNodes = 1;
    obs::FlightRecorder recorder(config);
    recorder.record("n1", 1.0, "kept");
    recorder.record("n2", 2.0, "dropped");
    EXPECT_EQ(recorder.droppedLines(), 1u);
    ASSERT_EQ(recorder.context().size(), 1u);
    EXPECT_EQ(recorder.context()[0].node, "n1");
}

TEST(FlightRecorderTest, BundleStoreIsBounded)
{
    obs::FlightRecorderConfig config;
    config.perNodeCapacity = 1;
    config.maxBundles = 2;
    obs::FlightRecorder recorder(config);
    recorder.addBundle("{\"n\":1}");
    recorder.addBundle("{\"n\":2}");
    recorder.addBundle("{\"n\":3}");
    ASSERT_EQ(recorder.bundles().size(), 2u);
    EXPECT_EQ(recorder.bundles()[0], "{\"n\":2}");
    EXPECT_EQ(recorder.droppedBundles(), 1u);
    EXPECT_EQ(recorder.bundleJsonLines(), "{\"n\":2}\n{\"n\":3}\n");
}

// --- Monitor wiring ------------------------------------------------

namespace {

/** Ping/pong monitor fixture mirroring monitor_test. */
class FlightMonitorTest : public ::testing::Test
{
  protected:
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();
    logging::RecordId nextRecord = 1;

    std::unique_ptr<WorkflowMonitor>
    makeMonitor(MonitorConfig config = {})
    {
        return std::make_unique<WorkflowMonitor>(config, catalog,
                                                 automata());
    }

    std::vector<TaskAutomaton>
    automata()
    {
        logging::TemplateId ping =
            catalog->intern("svc-a", "ping <uuid>");
        logging::TemplateId pong =
            catalog->intern("svc-b", "pong <uuid>");
        std::vector<EventNode> events = {{ping, 0}, {pong, 0}};
        std::vector<DependencyEdge> edges = {{0, 1, true}};
        std::vector<TaskAutomaton> out;
        out.emplace_back("ping-pong", std::move(events),
                         std::move(edges));
        return out;
    }

    static MonitorConfig
    flightConfig()
    {
        MonitorConfig config;
        config.observability.flightRecorder.perNodeCapacity = 8;
        return config;
    }

    static LatencyProfile
    pingPongProfile()
    {
        LatencyProfile profile;
        profile.task = "ping-pong";
        profile.runs = 4;
        profile.total = {4, 0.5, 1.0, 1.0, 1.0};
        profile.edges[{0, 1}] = profile.total;
        return profile;
    }

    logging::LogRecord
    record(const std::string &service, const std::string &body,
           double t, logging::LogLevel level = logging::LogLevel::Info)
    {
        logging::LogRecord out;
        out.id = nextRecord++;
        out.timestamp = t;
        out.node = "controller";
        out.service = service;
        out.level = level;
        out.body = body;
        return out;
    }

    static std::string
    uuid(int which)
    {
        char buf[37];
        std::snprintf(buf, sizeof buf,
                      "%08d-aaaa-bbbb-cccc-dddddddddddd", which);
        return buf;
    }

    logging::LogRecord
    ping(int which, double t)
    {
        return record("svc-a", "ping " + uuid(which), t);
    }

    logging::LogRecord
    pong(int which, double t)
    {
        return record("svc-b", "pong " + uuid(which), t);
    }
};

} // namespace

TEST_F(FlightMonitorTest, UnconfiguredRecorderConstructsNothing)
{
    auto monitor = makeMonitor();
    EXPECT_FALSE(monitor->observabilityEnabled());
    EXPECT_EQ(monitor->observability(), nullptr);
    EXPECT_EQ(monitor->flightRecorder(), nullptr);
    monitor->feed(ping(1, 1.0));
    monitor->finish();
    EXPECT_EQ(monitor->forensicBundleJsonLines(), "");
}

TEST_F(FlightMonitorTest, FlightAloneEnablesObservability)
{
    auto monitor = makeMonitor(flightConfig());
    EXPECT_TRUE(monitor->observabilityEnabled());
    ASSERT_NE(monitor->flightRecorder(), nullptr);
    // Metrics and tracing stay off: their sinks remain empty.
    EXPECT_EQ(monitor->prometheusText(), "");
    EXPECT_EQ(monitor->chromeTraceJson(), "");
}

TEST_F(FlightMonitorTest, ReportsBitIdenticalWithRecorderOn)
{
    auto plain = makeMonitor();
    auto flighted = makeMonitor(flightConfig());

    auto runThrough = [this](WorkflowMonitor &monitor) {
        std::string out;
        logging::RecordId saved = nextRecord;
        nextRecord = 1;
        std::vector<logging::LogRecord> records = {
            ping(1, 1.0), ping(2, 2.0), pong(2, 3.0),
            record("svc-a", "exploded on " + uuid(3), 4.0,
                   logging::LogLevel::Error),
            pong(1, 30.0)};
        for (const logging::LogRecord &r : records)
            for (const MonitorReport &report : monitor.feed(r))
                out += reportToJson(report, monitor.catalog()) + "\n";
        for (const MonitorReport &report : monitor.finish())
            out += reportToJson(report, monitor.catalog()) + "\n";
        nextRecord = saved;
        return out;
    };

    std::string baseline = runThrough(*plain);
    EXPECT_EQ(baseline, runThrough(*flighted));
    EXPECT_FALSE(baseline.empty());
    // The recorder captured evidence without perturbing the verdicts.
    EXPECT_GT(flighted->flightRecorder()->linesRecorded(), 0u);
}

TEST_F(FlightMonitorTest, DivergenceAndTimeoutProduceBundles)
{
    auto monitor = makeMonitor(flightConfig());
    monitor->feed(ping(1, 1.0));
    monitor->feed(record("svc-a", "exploded on " + uuid(1), 1.5,
                         logging::LogLevel::Error));
    monitor->feed(ping(2, 2.0));
    for (const MonitorReport &report : monitor->finish())
        (void)report;

    const std::vector<std::string> &bundles =
        monitor->flightRecorder()->bundles();
    ASSERT_EQ(bundles.size(), 2u);
    EXPECT_NE(bundles[0].find("\"reason\":\"ERROR\""),
              std::string::npos);
    EXPECT_NE(bundles[1].find("\"reason\":\"TIMEOUT\""),
              std::string::npos);
    // Context carries the raw lines; identifiers the resolved uuid.
    EXPECT_NE(bundles[0].find("exploded on"), std::string::npos);
    EXPECT_NE(bundles[0].find(uuid(1)), std::string::npos);
    EXPECT_NE(monitor->forensicBundleJsonLines().find(
                  "\"kind\":\"BUNDLE\""),
              std::string::npos);
}

TEST_F(FlightMonitorTest, LatencyAnomalyProducesBundle)
{
    MonitorConfig config = flightConfig();
    config.latencyProfiles = {pingPongProfile()};
    config.latencyCheck.quantile = 100;
    config.latencyCheck.factor = 1.0;
    config.latencyCheck.slackSeconds = 0.0;
    auto monitor = makeMonitor(config);

    monitor->feed(ping(1, 1.0));
    auto reports = monitor->feed(pong(1, 4.0)); // budget is 1.0 s
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::LatencyAnomaly);

    const std::vector<std::string> &bundles =
        monitor->flightRecorder()->bundles();
    ASSERT_EQ(bundles.size(), 1u);
    EXPECT_NE(bundles[0].find("\"reason\":\"LATENCY\""),
              std::string::npos);
    EXPECT_NE(bundles[0].find("\"latency\":{"), std::string::npos);
}

TEST_F(FlightMonitorTest, MalformedLinesAreStillCaptured)
{
    auto monitor = makeMonitor(flightConfig());
    monitor->feedLine("not a log line");
    EXPECT_EQ(monitor->malformedLines(), 1u);
    std::vector<obs::ContextLine> context =
        monitor->flightRecorder()->context();
    ASSERT_EQ(context.size(), 1u);
    EXPECT_EQ(context[0].node, "<malformed>");
    EXPECT_EQ(context[0].line, "not a log line");
}

// --- Golden report stream ------------------------------------------

TEST_F(FlightMonitorTest, ReportStreamMatchesGoldenFixture)
{
    // One on-time accept, one latency anomaly, one divergence, one
    // end-of-stream timeout: pins VERDICT framing including the
    // start/duration fields and the nested latency object.
    MonitorConfig config;
    config.latencyProfiles = {pingPongProfile()};
    config.latencyCheck.quantile = 100;
    config.latencyCheck.factor = 1.0;
    config.latencyCheck.slackSeconds = 0.0;
    auto monitor = makeMonitor(config);

    std::string stream;
    std::vector<logging::LogRecord> records = {
        ping(1, 1.0),  pong(1, 1.5),  // accepted, 0.5 s
        ping(2, 2.0),  pong(2, 4.0),  // anomalous, 2.0 s
        ping(3, 5.0),
        record("svc-a", "exploded on " + uuid(3), 5.5,
               logging::LogLevel::Error),
        ping(4, 6.0),                 // left open: times out at finish
    };
    for (const logging::LogRecord &r : records)
        for (const MonitorReport &report : monitor->feed(r))
            stream += reportToJson(report, monitor->catalog()) + "\n";
    for (const MonitorReport &report : monitor->finish())
        stream += reportToJson(report, monitor->catalog()) + "\n";

    std::string path = std::string(CLOUDSEER_SOURCE_DIR) +
                       "/tests/golden/report_stream.jsonl";
    if (std::getenv("CLOUDSEER_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        out << stream;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden fixture " << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(stream, buffer.str());
}

// --- End-to-end precision/recall -----------------------------------

namespace {

const eval::ModeledSystem &
evalModels()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(LatencyEval, MinedSystemProfilesCoverEveryTask)
{
    const eval::ModeledSystem &models = evalModels();
    eval::LatencyMiningConfig config;
    std::vector<LatencyProfile> profiles =
        eval::mineSystemProfiles(models, config);
    ASSERT_EQ(profiles.size(), models.automata.size());
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        EXPECT_EQ(profiles[i].task, models.automata[i].name());
        EXPECT_TRUE(profiles[i].hasSamples())
            << profiles[i].task << " mined no samples";
        EXPECT_EQ(profiles[i].runs, config.runsPerTask);
        EXPECT_TRUE(profiles[i].total.wellFormed());
    }
}

TEST(LatencyEval, PrecisionAndRecallOnDelayFaults)
{
    const eval::ModeledSystem &models = evalModels();
    std::vector<LatencyProfile> profiles =
        eval::mineSystemProfiles(models, eval::LatencyMiningConfig{});

    eval::LatencyEvalConfig config; // default Delay scenario, p99
    config.targetProblems = 25;
    eval::LatencyEvalResult result =
        eval::runLatencyExperiment(models, profiles, config);

    EXPECT_GT(result.delayProblems, 0);
    EXPECT_GT(result.anomaliesReported, 0);
    // The acceptance bar: both >= 0.9 at the default p99 policy.
    EXPECT_GE(result.precision(), 0.9)
        << eval::latencyEvalTable({result});
    EXPECT_GE(result.recall(), 0.9) << eval::latencyEvalTable({result});
    // Delays are 15-30 s: detection lands in the same order.
    EXPECT_GT(result.detectionDelay.mean(), 0.0);

    std::string json = eval::latencyEvalJson(result);
    EXPECT_NE(json.find("\"kind\":\"LATENCY_EVAL\""),
              std::string::npos);
    EXPECT_NE(json.find("\"precision\":"), std::string::npos);
}
