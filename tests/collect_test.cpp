/**
 * @file
 * Unit tests for the collection pipeline: stream merging with shipping
 * skew and the Elasticsearch-stand-in log store.
 */

#include <gtest/gtest.h>

#include "collect/log_store.hpp"
#include "collect/stream_merger.hpp"
#include "sim/simulation.hpp"

using namespace cloudseer;
using namespace cloudseer::collect;

namespace {

logging::LogRecord
record(logging::RecordId id, double t, const std::string &node,
       const std::string &body,
       logging::LogLevel level = logging::LogLevel::Info)
{
    logging::LogRecord out;
    out.id = id;
    out.timestamp = t;
    out.node = node;
    out.service = "nova-api";
    out.level = level;
    out.body = body;
    return out;
}

} // namespace

TEST(StreamMerger, ZeroSkewPreservesOrder)
{
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 50; ++i)
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 1.0, "controller", "m"));
    ShippingConfig config;
    config.meanDelay = 1e-6;
    auto stream = mergeStream(records, config);
    ASSERT_EQ(stream.size(), records.size());
    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(stream[i].id, records[i].id);
    EXPECT_EQ(countInversions(stream), 0u);
}

TEST(StreamMerger, ArrivalTimesAfterEmission)
{
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 20; ++i)
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 0.1, "controller", "m"));
    ShippingConfig config;
    auto arrived = shipToCollector(records, config);
    for (const ArrivedRecord &a : arrived)
        EXPECT_GE(a.arrival, a.record.timestamp);
    for (std::size_t i = 1; i < arrived.size(); ++i)
        EXPECT_GE(arrived[i].arrival, arrived[i - 1].arrival);
}

TEST(StreamMerger, HeavyTailIntroducesInversions)
{
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 400; ++i)
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 0.05, "controller", "m"));
    ShippingConfig config;
    config.meanDelay = 0.004;
    config.tailProbability = 0.2;
    config.tailMin = 0.2;
    config.tailMax = 0.6;
    auto stream = mergeStream(records, config);
    EXPECT_GT(countInversions(stream), 0u);
}

TEST(StreamMerger, DeterministicForEqualSeeds)
{
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 100; ++i)
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 0.01, "controller", "m"));
    ShippingConfig config;
    config.tailProbability = 0.1;
    auto a = mergeStream(records, config);
    auto b = mergeStream(records, config);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
}

TEST(StreamMerger, NoRecordsLost)
{
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 123; ++i)
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 0.02, "compute-1", "m"));
    ShippingConfig config;
    config.tailProbability = 0.3;
    auto stream = mergeStream(records, config);
    ASSERT_EQ(stream.size(), records.size());
    std::set<logging::RecordId> ids;
    for (const logging::LogRecord &r : stream)
        ids.insert(r.id);
    EXPECT_EQ(ids.size(), records.size());
}

TEST(StreamMerger, ArrivalTiesKeepEmissionOrder)
{
    // sortByArrival is documented stable: equal arrival times keep
    // emission order. Build ties by hand and check directly.
    std::vector<ArrivedRecord> arrived;
    arrived.push_back({record(1, 0.0, "a", "m"), 5.0});
    arrived.push_back({record(2, 0.1, "b", "m"), 3.0});
    arrived.push_back({record(3, 0.2, "a", "m"), 5.0});
    arrived.push_back({record(4, 0.3, "b", "m"), 3.0});
    arrived.push_back({record(5, 0.4, "c", "m"), 5.0});
    sortByArrival(arrived);
    std::vector<logging::RecordId> order;
    for (const ArrivedRecord &a : arrived)
        order.push_back(a.record.id);
    EXPECT_EQ(order, (std::vector<logging::RecordId>{2, 4, 1, 3, 5}));
}

TEST(StreamMerger, InversionsCountedPerNodePair)
{
    // a@1.0, b@2.0, a@3.0 arrive as b, a, a: the (b, a) pair inverted
    // once; then c@4.0 arrives before a@3.5: (c, a) inverted once.
    std::vector<logging::LogRecord> stream;
    stream.push_back(record(2, 2.0, "b", "m"));
    stream.push_back(record(1, 1.0, "a", "m"));
    stream.push_back(record(3, 3.0, "a", "m"));
    stream.push_back(record(5, 4.0, "c", "m"));
    stream.push_back(record(4, 3.5, "a", "m"));

    InversionStats stats = countInversionsDetailed(stream);
    EXPECT_EQ(stats.total, 2u);
    EXPECT_EQ(stats.total, countInversions(stream));
    ASSERT_EQ(stats.byNodePair.size(), 2u);
    EXPECT_EQ(stats.byNodePair.at({"b", "a"}), 1u);
    EXPECT_EQ(stats.byNodePair.at({"c", "a"}), 1u);
}

TEST(StreamMerger, CrossNodeSkewShowsUpInNodePairCounts)
{
    // Two nodes, interleaved emissions; the slow-shipping node should
    // dominate the inverted pairs.
    std::vector<logging::LogRecord> records;
    for (int i = 0; i < 200; ++i) {
        records.push_back(record(static_cast<logging::RecordId>(i + 1),
                                 i * 0.01,
                                 i % 2 == 0 ? "fast" : "slow", "m"));
    }
    ShippingConfig config;
    config.meanDelay = 1e-4;
    config.tailProbability = 0.0;
    // Delay the slow node's records by hand to force inversions.
    auto arrived = shipToCollector(records, config);
    for (ArrivedRecord &a : arrived) {
        if (a.record.node == "slow")
            a.arrival += 0.05;
    }
    sortByArrival(arrived);
    std::vector<logging::LogRecord> stream;
    for (ArrivedRecord &a : arrived)
        stream.push_back(std::move(a.record));

    InversionStats stats = countInversionsDetailed(stream);
    ASSERT_GT(stats.total, 0u);
    std::size_t fast_before_slow = 0;
    for (const auto &[pair, count] : stats.byNodePair) {
        if (pair.first == "fast" && pair.second == "slow")
            fast_before_slow += count;
    }
    // Every inversion here is a fast-node record arriving before an
    // earlier-stamped slow-node record.
    EXPECT_EQ(fast_before_slow, stats.total);
}

TEST(LogStore, AppendAndCount)
{
    LogStore store;
    store.append(record(1, 0.0, "controller", "hello"));
    store.append(record(2, 1.0, "compute-1", "world",
                        logging::LogLevel::Error));
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.count({}), 2u);
}

TEST(LogStore, FilterByServiceNodeLevel)
{
    LogStore store;
    auto r1 = record(1, 0.0, "controller", "a");
    auto r2 = record(2, 1.0, "compute-1", "b",
                     logging::LogLevel::Error);
    r2.service = "nova-compute";
    store.append(r1);
    store.append(r2);

    LogQuery by_service;
    by_service.service = "nova-compute";
    EXPECT_EQ(store.count(by_service), 1u);

    LogQuery by_node;
    by_node.node = "controller";
    EXPECT_EQ(store.count(by_node), 1u);

    LogQuery errors;
    errors.errorOnly = true;
    auto found = store.search(errors);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].id, 2u);
}

TEST(LogStore, FilterByTimeWindowAndSubstring)
{
    LogStore store;
    for (int i = 0; i < 10; ++i)
        store.append(record(static_cast<logging::RecordId>(i + 1),
                            i * 1.0, "controller",
                            "message " + std::to_string(i)));
    LogQuery window;
    window.fromTime = 2.0;
    window.toTime = 5.0;
    EXPECT_EQ(store.count(window), 4u);

    LogQuery text;
    text.bodyContains = "message 7";
    EXPECT_EQ(store.count(text), 1u);

    LogQuery both;
    both.fromTime = 2.0;
    both.toTime = 5.0;
    both.bodyContains = "message 3";
    EXPECT_EQ(store.count(both), 1u);
}

TEST(LogStore, LinesRoundTrip)
{
    LogStore store;
    store.append(record(1, 0.5, "controller", "alpha beta"));
    store.append(record(2, 1.5, "compute-2", "gamma",
                        logging::LogLevel::Warning));
    auto lines = store.toLines();
    ASSERT_EQ(lines.size(), 2u);

    std::size_t malformed = 0;
    LogStore rebuilt = LogStore::fromLines(lines, &malformed);
    EXPECT_EQ(malformed, 0u);
    ASSERT_EQ(rebuilt.size(), 2u);
    EXPECT_EQ(rebuilt.all()[0].body, "alpha beta");
    EXPECT_EQ(rebuilt.all()[1].level, logging::LogLevel::Warning);
}

TEST(LogStore, FromLinesSkipsMalformed)
{
    std::vector<std::string> lines = {
        "2016-01-12 00:00:01.000 controller nova-api INFO fine",
        "complete garbage",
        "2016-01-12 00:00:02.000 controller nova-api INFO also fine",
    };
    std::size_t malformed = 0;
    LogStore store = LogStore::fromLines(lines, &malformed);
    EXPECT_EQ(malformed, 1u);
    EXPECT_EQ(store.size(), 2u);
}

TEST(LogStore, WirePathStripsGroundTruth)
{
    // End to end: simulate, ship as text, rebuild — the store the
    // monitor reads must carry no ground truth.
    sim::SimConfig config;
    config.enableNoise = false;
    sim::Simulation simulation(config, 9);
    sim::UserProfile user = simulation.makeUser();
    sim::VmHandle vm = simulation.makeVm();
    simulation.submit(sim::TaskType::Stop, 0.0, user, vm);
    simulation.run();

    LogStore shipped;
    shipped.appendStream(mergeStream(simulation.records(), {}));
    LogStore rebuilt = LogStore::fromLines(shipped.toLines());
    ASSERT_EQ(rebuilt.size(), shipped.size());
    for (const logging::LogRecord &r : rebuilt.all()) {
        EXPECT_EQ(r.truthExecution, 0u);
        EXPECT_TRUE(r.truthTask.empty());
    }
}
