/**
 * @file
 * Unit and property tests for task automata and their instances:
 * fork/join token semantics (paper Fig. 3 / Table 1), acceptance of
 * all linear extensions, and false-dependency removal (paper Fig. 4).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "core/automaton/automaton_instance.hpp"
#include "core/mining/dependency_miner.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::makeLetterAutomaton;

namespace {

/** The paper's Figure 3 boot automaton (simplified): a chain into a
 *  fork (GET || Starting) joining on Spawned. */
TaskAutomaton
figure3(LetterCatalog &letters)
{
    // A=accepted, P=POST, S=scheduling, G=GET, T=starting, W=spawned.
    return makeLetterAutomaton(letters, "boot",
                               {"A", "P", "S", "G", "T", "W"},
                               {{"A", "P"},
                                {"P", "S"},
                                {"S", "G"},
                                {"S", "T"},
                                {"G", "W"},
                                {"T", "W"}});
}

} // namespace

TEST(TaskAutomaton, StructuralQueries)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    EXPECT_EQ(automaton.eventCount(), 6u);
    EXPECT_EQ(automaton.edgeCount(), 6u);
    ASSERT_EQ(automaton.initialEvents().size(), 1u);
    EXPECT_EQ(automaton.event(automaton.initialEvents()[0]).tpl,
              letters.id("A"));
    ASSERT_EQ(automaton.finalEvents().size(), 1u);
    EXPECT_EQ(automaton.event(automaton.finalEvents()[0]).tpl,
              letters.id("W"));

    // S is the fork (q3 in the paper), W the join (q6).
    auto forks = automaton.forkStates();
    ASSERT_EQ(forks.size(), 1u);
    EXPECT_EQ(automaton.event(forks[0]).tpl, letters.id("S"));
    auto joins = automaton.joinStates();
    ASSERT_EQ(joins.size(), 1u);
    EXPECT_EQ(automaton.event(joins[0]).tpl, letters.id("W"));
}

TEST(TaskAutomaton, TemplateLookup)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    EXPECT_TRUE(automaton.containsTemplate(letters.id("G")));
    EXPECT_FALSE(automaton.containsTemplate(letters.id("Z")));
    EXPECT_EQ(automaton.eventsForTemplate(letters.id("T")).size(), 1u);
    EXPECT_TRUE(automaton.eventsForTemplate(letters.id("Z")).empty());
}

TEST(TaskAutomaton, DotRenderingMentionsEveryEvent)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    std::string dot = automaton.toDot(*letters.catalog);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    for (const char *name : {"A", "P", "S", "G", "T", "W"})
        EXPECT_NE(dot.find(std::string("svc: ") + name),
                  std::string::npos);
}

TEST(TaskAutomaton, SameStructureDetectsChange)
{
    LetterCatalog letters;
    TaskAutomaton a = figure3(letters);
    TaskAutomaton b = figure3(letters);
    EXPECT_TRUE(a.sameStructure(b));
    TaskAutomaton c = makeLetterAutomaton(
        letters, "boot", {"A", "P", "S", "G", "T", "W"},
        {{"A", "P"}, {"P", "S"}, {"S", "G"}, {"S", "T"}, {"G", "W"}});
    EXPECT_FALSE(a.sameStructure(c));
}

TEST(AutomatonInstance, PaperTable1Walkthrough)
{
    // Instance transitions mirror Table 1 rows for sequence "1".
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance instance(&automaton);

    EXPECT_FALSE(instance.started());
    EXPECT_TRUE(instance.consume(letters.id("A"))); // {q0} -> {q1}
    EXPECT_TRUE(instance.consume(letters.id("P"))); // -> {q2}
    EXPECT_TRUE(instance.consume(letters.id("S"))); // -> {q3}

    // Fork: T (Starting) arrives first -> {q3, q5}.
    EXPECT_TRUE(instance.consume(letters.id("T")));
    {
        auto frontier = instance.frontier();
        std::vector<logging::TemplateId> tpls;
        for (int e : frontier)
            tpls.push_back(automaton.event(e).tpl);
        std::sort(tpls.begin(), tpls.end());
        std::vector<logging::TemplateId> expected = {letters.id("S"),
                                                     letters.id("T")};
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(tpls, expected) << "state {q3, q5}";
    }

    // W (Spawned) must wait for the other branch.
    EXPECT_FALSE(instance.canConsume(letters.id("W")));
    EXPECT_TRUE(instance.consume(letters.id("G"))); // -> {q4, q5}
    EXPECT_TRUE(instance.consume(letters.id("W"))); // join -> {q6}
    EXPECT_TRUE(instance.accepting());
    EXPECT_TRUE(instance.frontier().empty());
}

TEST(AutomatonInstance, RejectsOutOfOrder)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance instance(&automaton);
    EXPECT_FALSE(instance.canConsume(letters.id("P")));
    EXPECT_FALSE(instance.consume(letters.id("P")));
    EXPECT_FALSE(instance.consume(letters.id("Z")));
    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_FALSE(instance.consume(letters.id("A"))) << "no re-consume";
}

TEST(AutomatonInstance, ExpectedTemplates)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance instance(&automaton);
    instance.consume(letters.id("A"));
    instance.consume(letters.id("P"));
    instance.consume(letters.id("S"));
    auto expected = instance.expectedTemplates();
    std::sort(expected.begin(), expected.end());
    std::vector<logging::TemplateId> want = {letters.id("G"),
                                             letters.id("T")};
    std::sort(want.begin(), want.end());
    EXPECT_EQ(expected, want);
}

TEST(AutomatonInstance, RepeatedTemplateOccurrences)
{
    LetterCatalog letters;
    // A -> B -> A(second occurrence).
    std::vector<EventNode> events = {{letters.id("A"), 0},
                                     {letters.id("B"), 0},
                                     {letters.id("A"), 1}};
    std::vector<DependencyEdge> edges = {{0, 1, true}, {1, 2, true}};
    TaskAutomaton automaton("rep", std::move(events), std::move(edges));
    AutomatonInstance instance(&automaton);
    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_FALSE(instance.canConsume(letters.id("A")))
        << "second A is blocked until B";
    EXPECT_TRUE(instance.consume(letters.id("B")));
    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_TRUE(instance.accepting());
}

TEST(AutomatonInstance, SameStateComparison)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance a(&automaton);
    AutomatonInstance b(&automaton);
    EXPECT_TRUE(a.sameState(b));
    a.consume(letters.id("A"));
    EXPECT_FALSE(a.sameState(b));
    b.consume(letters.id("A"));
    EXPECT_TRUE(a.sameState(b));
}

TEST(AutomatonInstance, FalseDependencyRemovalFigure4)
{
    // Paper Figure 4: chain A->B->C->D; sequence ACBD arrives.
    LetterCatalog letters;
    TaskAutomaton automaton = makeLetterAutomaton(
        letters, "fig4", {"A", "B", "C", "D"},
        {{"A", "B"}, {"B", "C"}, {"C", "D"}});
    AutomatonInstance instance(&automaton);

    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_FALSE(instance.canConsume(letters.id("C")));

    // Remove the false dependency B -> C (with weakening A->C, B->D).
    EXPECT_TRUE(instance.removeFalseDependencies(letters.id("C")));
    EXPECT_EQ(instance.removedDependencyCount(), 1u);
    EXPECT_TRUE(instance.consume(letters.id("C")));

    // D must still wait for B (the weakened B -> D dependency).
    EXPECT_FALSE(instance.canConsume(letters.id("D")));
    EXPECT_TRUE(instance.consume(letters.id("B")));
    EXPECT_TRUE(instance.consume(letters.id("D")));
    EXPECT_TRUE(instance.accepting());
}

TEST(AutomatonInstance, FalseDependencyCascade)
{
    // Sequence DABC against chain A->B->C->D: enabling D requires
    // removing every blocking ancestor edge.
    LetterCatalog letters;
    TaskAutomaton automaton = makeLetterAutomaton(
        letters, "chain", {"A", "B", "C", "D"},
        {{"A", "B"}, {"B", "C"}, {"C", "D"}});
    AutomatonInstance instance(&automaton);
    EXPECT_TRUE(instance.removeFalseDependencies(letters.id("D")));
    EXPECT_TRUE(instance.consume(letters.id("D")));
    // The rest still arrives in order and is accepted.
    EXPECT_TRUE(instance.consume(letters.id("A")));
    EXPECT_TRUE(instance.consume(letters.id("B")));
    EXPECT_TRUE(instance.consume(letters.id("C")));
    EXPECT_TRUE(instance.accepting());
}

TEST(AutomatonInstance, RemovalOnUnknownTemplateFails)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance instance(&automaton);
    instance.consume(letters.id("A"));
    EXPECT_FALSE(instance.removeFalseDependencies(letters.id("Z")));
    EXPECT_EQ(instance.removedDependencyCount(), 0u);
}

TEST(AutomatonInstance, RemovalOnEnabledEventIsNoop)
{
    LetterCatalog letters;
    TaskAutomaton automaton = figure3(letters);
    AutomatonInstance instance(&automaton);
    EXPECT_TRUE(instance.removeFalseDependencies(letters.id("A")));
    EXPECT_EQ(instance.removedDependencyCount(), 0u);
}

// ---------------------------------------------------------------------
// Property: an automaton mined from a set of sequences accepts every
// linear extension of the mined partial order — and in particular all
// of its own training sequences.
// ---------------------------------------------------------------------

class LinearExtensionProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LinearExtensionProperty, AcceptsTrainingAndRandomExtensions)
{
    common::Rng rng(GetParam());
    LetterCatalog letters;

    // Random series-parallel-ish workload: a chain with one fork block.
    int pre = rng.uniformInt(1, 3);
    int branch_a = rng.uniformInt(1, 3);
    int branch_b = rng.uniformInt(1, 3);
    int post = rng.uniformInt(1, 2);
    std::vector<std::string> pre_names, a_names, b_names, post_names;
    int next_letter = 0;
    auto fresh = [&next_letter]() {
        return std::string(1, static_cast<char>('A' + next_letter++));
    };
    for (int i = 0; i < pre; ++i)
        pre_names.push_back(fresh());
    for (int i = 0; i < branch_a; ++i)
        a_names.push_back(fresh());
    for (int i = 0; i < branch_b; ++i)
        b_names.push_back(fresh());
    for (int i = 0; i < post; ++i)
        post_names.push_back(fresh());

    // Generate training sequences by randomly interleaving branches.
    auto generate = [&]() {
        std::vector<std::string> out = pre_names;
        std::size_t ia = 0, ib = 0;
        while (ia < a_names.size() || ib < b_names.size()) {
            bool take_a = ib >= b_names.size() ||
                          (ia < a_names.size() && rng.chance(0.5));
            out.push_back(take_a ? a_names[ia++] : b_names[ib++]);
        }
        for (const std::string &name : post_names)
            out.push_back(name);
        return out;
    };

    std::vector<core::TemplateSequence> runs;
    std::vector<std::vector<std::string>> raw_runs;
    for (int r = 0; r < 30; ++r) {
        auto run = generate();
        raw_runs.push_back(run);
        core::TemplateSequence seq;
        for (const std::string &name : run)
            seq.push_back(letters.id(name));
        runs.push_back(seq);
    }

    MinedModel mined = mineDependencies(runs);
    TaskAutomaton automaton("prop", std::move(mined.events),
                            std::move(mined.edges));

    // Every training sequence must be accepted.
    for (const auto &run : raw_runs) {
        AutomatonInstance instance(&automaton);
        for (const std::string &name : run)
            ASSERT_TRUE(instance.consume(letters.id(name)));
        EXPECT_TRUE(instance.accepting());
    }

    // And fresh random interleavings (linear extensions) as well.
    for (int r = 0; r < 20; ++r) {
        auto run = generate();
        AutomatonInstance instance(&automaton);
        for (const std::string &name : run)
            ASSERT_TRUE(instance.consume(letters.id(name)));
        EXPECT_TRUE(instance.accepting());
    }
}

INSTANTIATE_TEST_SUITE_P(RandomWorkflows, LinearExtensionProperty,
                         ::testing::Range<std::uint64_t>(1, 13));
