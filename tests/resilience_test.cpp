/**
 * @file
 * Acceptance tests for the resilience harness: the hardened ingest
 * profile must hold detection quality under moderate transport
 * adversity, stay inside its group cap, and account for every shed
 * group — while matching the unhardened path exactly on clean input.
 */

#include <gtest/gtest.h>

#include "eval/modeling_harness.hpp"
#include "eval/resilience_harness.hpp"

using namespace cloudseer;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

/** The ISSUE's "moderate adversity" point at intensity 1.0. */
eval::ResilienceConfig
moderateConfig()
{
    eval::ResilienceConfig config;
    config.targetProblems = 6;
    config.maxRuns = 30;
    config.adversity.dropProbability = 0.01;
    config.adversity.duplicateProbability = 0.01;
    config.adversity.clockSkewMaxSeconds = 0.05;
    config.intensities = {0.0, 1.0};
    return config;
}

} // namespace

TEST(Resilience, HardenedMonitorRetainsRecallUnderModerateAdversity)
{
    eval::ResilienceConfig config = moderateConfig();
    config.monitor.ingest = core::hardenedIngestDefaults();
    eval::ResilienceCurve curve =
        eval::runResilienceSweep(models(), config);
    ASSERT_EQ(curve.points.size(), 2u);

    const eval::ResiliencePoint &clean = curve.clean();
    const eval::ResiliencePoint &adverse = curve.points[1];

    // The baseline detects the detectable classes reliably.
    EXPECT_GT(clean.abortDelayProblems, 0);
    EXPECT_GE(clean.abortDelayRecall(), 0.9);
    EXPECT_EQ(clean.dropped + clean.duplicated, 0u);

    // The perturber really did interfere at intensity 1.0 ...
    EXPECT_GT(adverse.dropped, 0u);
    EXPECT_GT(adverse.duplicated, 0u);

    // ... yet Abort/Delay recall retains >= 90% of the clean value.
    EXPECT_GE(curve.recallRetention(adverse), 0.9)
        << "clean AD-recall " << clean.abortDelayRecall()
        << " vs adverse " << adverse.abortDelayRecall();

    // The group cap is never exceeded, and every shed group is
    // accounted for by exactly one Degraded report.
    std::size_t cap = config.monitor.ingest.maxActiveGroups;
    for (const eval::ResiliencePoint &point : curve.points) {
        EXPECT_LE(point.peakActiveGroups, cap);
        EXPECT_EQ(point.degradedReports, point.groupsShed);
    }
}

TEST(Resilience, CleanBaselineIdenticalAcrossIngestProfiles)
{
    // At intensity zero every hardening guard must pass through: the
    // scored outcome is identical to the unhardened monitor's.
    eval::ResilienceConfig config = moderateConfig();
    config.intensities = {0.0};

    eval::ResilienceCurve plain =
        eval::runResilienceSweep(models(), config);
    config.monitor.ingest = core::hardenedIngestDefaults();
    eval::ResilienceCurve hardened =
        eval::runResilienceSweep(models(), config);

    const eval::ResiliencePoint &a = plain.clean();
    const eval::ResiliencePoint &b = hardened.clean();
    EXPECT_EQ(a.stats.truePositives, b.stats.truePositives);
    EXPECT_EQ(a.stats.falsePositives, b.stats.falsePositives);
    EXPECT_EQ(a.stats.falseNegatives, b.stats.falseNegatives);
    EXPECT_DOUBLE_EQ(a.detectionLatency.mean(),
                     b.detectionLatency.mean());
    EXPECT_EQ(b.duplicatesSuppressed, 0u);
    EXPECT_EQ(b.groupsShed, 0u);
}

TEST(Resilience, SweepIsDeterministic)
{
    eval::ResilienceConfig config = moderateConfig();
    config.targetProblems = 3;
    config.intensities = {1.0};
    config.monitor.ingest = core::hardenedIngestDefaults();
    eval::ResilienceCurve a = eval::runResilienceSweep(models(), config);
    eval::ResilienceCurve b = eval::runResilienceSweep(models(), config);
    EXPECT_EQ(eval::resilienceCurveToJson(a),
              eval::resilienceCurveToJson(b));
}

TEST(Resilience, CurveJsonNamesItsFields)
{
    eval::ResilienceConfig config = moderateConfig();
    config.targetProblems = 2;
    config.intensities = {0.0};
    eval::ResilienceCurve curve =
        eval::runResilienceSweep(models(), config);
    std::string json = eval::resilienceCurveToJson(curve);
    for (const char *key :
         {"\"intensity\":", "\"precision\":", "\"recall\":",
          "\"abortDelayRecall\":", "\"recallRetention\":",
          "\"meanDetectionLatency\":", "\"quarantinedLines\":",
          "\"groupsShed\":", "\"peakActiveGroups\":"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}
