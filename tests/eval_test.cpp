/**
 * @file
 * Tests for the evaluation harness itself: dataset generation,
 * ground-truth scoring, experiment configuration, and detection
 * bookkeeping. The harness produces the paper-table numbers, so its
 * own correctness is load-bearing.
 */

#include <gtest/gtest.h>

#include <set>

#include "eval/accuracy_harness.hpp"
#include "eval/detection_harness.hpp"
#include "eval/experiment_config.hpp"
#include "eval/modeling_harness.hpp"

using namespace cloudseer;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(ExperimentConfig, Table3Matrix)
{
    auto groups = eval::table3Groups();
    ASSERT_EQ(groups.size(), 6u);
    // Users 2/3/4 twice; single-UID exactly for groups 4-6.
    EXPECT_EQ(groups[0].users, 2);
    EXPECT_EQ(groups[2].users, 4);
    EXPECT_FALSE(groups[0].singleUid);
    EXPECT_TRUE(groups[3].singleUid);
    // Paper's Total Tasks column: 1600/2400/3200 repeated.
    EXPECT_EQ(groups[0].totalTasks(), 1600);
    EXPECT_EQ(groups[1].totalTasks(), 2400);
    EXPECT_EQ(groups[5].totalTasks(), 3200);
}

TEST(ExperimentConfig, SeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (int group = 1; group <= 6; ++group) {
        for (int dataset = 0; dataset < 10; ++dataset)
            seeds.insert(eval::datasetSeed(group, dataset));
    }
    EXPECT_EQ(seeds.size(), 60u);
}

TEST(DatasetGeneration, Deterministic)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 6;
    config.seed = 11;
    eval::GeneratedDataset a = eval::generateDataset(config);
    eval::GeneratedDataset b = eval::generateDataset(config);
    ASSERT_EQ(a.stream.size(), b.stream.size());
    for (std::size_t i = 0; i < a.stream.size(); ++i) {
        EXPECT_EQ(a.stream[i].id, b.stream[i].id);
        EXPECT_EQ(a.stream[i].body, b.stream[i].body);
    }
}

TEST(DatasetGeneration, SeedChangesTheStream)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 6;
    config.seed = 11;
    eval::GeneratedDataset a = eval::generateDataset(config);
    config.seed = 12;
    eval::GeneratedDataset b = eval::generateDataset(config);
    bool differs = a.stream.size() != b.stream.size();
    for (std::size_t i = 0;
         !differs && i < std::min(a.stream.size(), b.stream.size());
         ++i) {
        differs = a.stream[i].body != b.stream[i].body;
    }
    EXPECT_TRUE(differs);
}

TEST(DatasetGeneration, StreamCarriesGroundTruthForScoringOnly)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 4;
    config.seed = 13;
    eval::GeneratedDataset dataset = eval::generateDataset(config);
    EXPECT_EQ(dataset.totalTasks, 8u);
    EXPECT_EQ(dataset.truth.executions().size(), 8u);
    std::size_t task_records = 0;
    for (const logging::LogRecord &record : dataset.stream) {
        if (record.truthExecution != 0)
            ++task_records;
    }
    EXPECT_GT(task_records, 8u * 5u);
}

TEST(AccuracyScoring, PerfectRunScoresPerfect)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 6;
    config.seed = 17;
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor);
    EXPECT_EQ(result.acceptedCorrect, result.totalTasks);
    EXPECT_EQ(result.notAccepted, 0u);
    EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
    EXPECT_GT(result.totalMessages, result.totalTasks * 5);
    EXPECT_GT(result.checkSeconds, 0.0);
    EXPECT_GT(result.secondsPer1k, 0.0);
}

TEST(AccuracyScoring, BrokenModelsScoreBelowPerfect)
{
    // Monitoring with only the boot automaton: every non-boot task
    // becomes unaccepted, and the scorer must notice.
    eval::ModeledSystem partial;
    partial.catalog = models().catalog;
    partial.automata.push_back(models().automata[0]); // boot only

    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 8;
    config.seed = 19;
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(partial, config, monitor);
    EXPECT_LT(result.acceptedCorrect, result.totalTasks);
    EXPECT_GT(result.notAccepted, 0u);
    EXPECT_LT(result.accuracy, 1.0);
}

TEST(AccuracyScoring, InterleavingFractionsAreOrdered)
{
    eval::DatasetConfig config;
    config.users = 4;
    config.tasksPerUser = 12;
    config.seed = 23;
    core::MonitorConfig monitor;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor);
    EXPECT_GE(result.interleavedFraction2,
              result.interleavedFraction3);
    EXPECT_GE(result.interleavedFraction3,
              result.interleavedFraction4);
    EXPECT_GT(result.interleavedFraction2, 0.0)
        << "4 concurrent users must interleave";
}

TEST(DetectionHarness, Deterministic)
{
    eval::DetectionConfig config;
    config.point = sim::InjectionPoint::AmqpSender;
    config.targetProblems = 4;
    config.seed = 29;
    core::MonitorConfig monitor;
    eval::DetectionResult a =
        eval::runDetectionExperiment(models(), config, monitor);
    eval::DetectionResult b =
        eval::runDetectionExperiment(models(), config, monitor);
    EXPECT_EQ(a.tasksRun, b.tasksRun);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.falsePositives, b.falsePositives);
    EXPECT_EQ(a.falseNegatives, b.falseNegatives);
}

TEST(DetectionHarness, ProblemCountsReachTheTarget)
{
    eval::DetectionConfig config;
    config.point = sim::InjectionPoint::AmqpReceiver;
    config.targetProblems = 6;
    config.seed = 31;
    core::MonitorConfig monitor;
    eval::DetectionResult result =
        eval::runDetectionExperiment(models(), config, monitor);
    EXPECT_EQ(result.delayProblems + result.abortProblems +
                  result.silentProblems,
              6);
    EXPECT_EQ(result.detected + result.falseNegatives, 6)
        << "every injected problem is either detected or a FN";
    EXPECT_GT(result.tasksRun, 0u);
}

TEST(DetectionHarness, LatencyRecordedForDetections)
{
    eval::DetectionConfig config;
    config.point = sim::InjectionPoint::AmqpReceiver;
    config.targetProblems = 6;
    config.seed = 31;
    core::MonitorConfig monitor;
    eval::DetectionResult result =
        eval::runDetectionExperiment(models(), config, monitor);
    EXPECT_EQ(result.detectionLatency.count(),
              static_cast<std::size_t>(result.detected));
    if (result.detected > 0) {
        // An abort's error message can land at the injection instant,
        // so zero latency is legitimate; negative is not.
        EXPECT_GE(result.detectionLatency.min(), 0.0);
        // Timeout-based detections land within a few timeout periods.
        EXPECT_LT(result.detectionLatency.max(), 60.0);
    }
}

TEST(ModelingHarness, PerTaskInfoConsistent)
{
    const eval::ModeledSystem &system = models();
    ASSERT_EQ(system.perTask.size(), system.automata.size());
    for (std::size_t i = 0; i < system.perTask.size(); ++i) {
        EXPECT_EQ(system.perTask[i].messages,
                  system.automata[i].eventCount());
        EXPECT_EQ(system.perTask[i].transitions,
                  system.automata[i].edgeCount());
        EXPECT_EQ(std::string(sim::taskTypeName(system.perTask[i].type)),
                  system.automata[i].name());
        // This fixture's tight run cap may stop before convergence;
        // the run count must still be within the cap.
        EXPECT_GT(system.perTask[i].runsUsed, 0u);
        EXPECT_LE(system.perTask[i].runsUsed, 150u);
    }
}

TEST(ModelingHarness, CatalogSharedAcrossAutomata)
{
    const eval::ModeledSystem &system = models();
    // Shared templates (e.g. the keystone auth line) must resolve to
    // one id used by several automata.
    logging::TemplateId auth = system.catalog->find(
        "keystone",
        "Authenticated request req-<uuid> for user <uuid> tenant "
        "<uuid>");
    ASSERT_NE(auth, logging::kInvalidTemplate);
    int automata_using = 0;
    for (const core::TaskAutomaton &automaton : system.automata) {
        if (automaton.containsTemplate(auth))
            ++automata_using;
    }
    EXPECT_GE(automata_using, 2);
}
