/**
 * @file
 * Robustness and resource-boundedness tests: a monitor that runs for
 * months must not accumulate groups, identifier sets, or catalog
 * entries without bound, and every configuration variant must stay
 * correct on clean input.
 */

#include <gtest/gtest.h>

#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "workload/workload_generator.hpp"

using namespace cloudseer;

namespace {

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 40;
        config.maxRuns = 150;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(Robustness, LongRunStateStaysBounded)
{
    // 4 users x 200 tasks (~10k messages): the live-state tables must
    // track in-flight work only, never history.
    eval::DatasetConfig config;
    config.users = 4;
    config.tasksPerUser = 200;
    config.seed = 71;
    eval::GeneratedDataset dataset = eval::generateDataset(config);

    core::MonitorConfig monitor_config;
    core::WorkflowMonitor monitor(monitor_config, models().catalog,
                                  models().automataCopy());
    std::size_t peak_groups = 0;
    std::size_t peak_sets = 0;
    for (const logging::LogRecord &record : dataset.stream) {
        monitor.feed(record);
        peak_groups = std::max(peak_groups, monitor.activeGroups());
        peak_sets =
            std::max(peak_sets, monitor.activeIdentifierSets());
    }
    monitor.finish();

    // With 4 users, in-flight work is a handful of sequences plus
    // short-lived hypothesis forks and fading zombies.
    EXPECT_LE(peak_groups, 40u)
        << "group table must not grow with stream length";
    EXPECT_LE(peak_sets, 40u);
    EXPECT_EQ(monitor.activeGroups(), 0u);
    EXPECT_EQ(monitor.activeIdentifierSets(), 0u);
}

TEST(Robustness, AcceptanceRateHoldsOverLongRuns)
{
    eval::DatasetConfig config;
    config.users = 3;
    config.tasksPerUser = 150;
    config.seed = 73;
    core::MonitorConfig monitor_config;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor_config);
    EXPECT_GE(static_cast<double>(result.acceptedCorrect) /
                  static_cast<double>(result.totalTasks),
              0.97);
}

TEST(Robustness, ZombieAbsorptionOffStillTerminates)
{
    eval::DatasetConfig config;
    config.users = 3;
    config.tasksPerUser = 30;
    config.seed = 79;
    core::MonitorConfig monitor_config;
    monitor_config.checker.zombieAbsorption = false;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor_config);
    // Clean input: acceptance must still be near-perfect.
    EXPECT_GE(static_cast<double>(result.acceptedCorrect) /
                  static_cast<double>(result.totalTasks),
              0.95);
}

TEST(Robustness, NumbersAsIdentifiersModeWorks)
{
    // Counting bare numbers as identifiers is noisier but must not
    // break checking on clean input.
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 20;
    config.seed = 83;
    core::MonitorConfig monitor_config;
    monitor_config.numbersAsIdentifiers = true;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor_config);
    EXPECT_GE(static_cast<double>(result.acceptedCorrect) /
                  static_cast<double>(result.totalTasks),
              0.9);
}

TEST(Robustness, TinyForkFanoutDegradesGracefully)
{
    eval::DatasetConfig config;
    config.users = 4;
    config.singleUid = true; // maximum ambiguity
    config.tasksPerUser = 40;
    config.seed = 89;
    core::MonitorConfig monitor_config;
    monitor_config.checker.maxForkFanout = 1;
    eval::DatasetResult result =
        eval::runDataset(models(), config, monitor_config);
    // A fanout of 1 disables hypothesis tracking on the nastiest
    // workload (shared identifiers everywhere). Accuracy collapses —
    // the test is that the checker *terminates* with consistent
    // accounting rather than looping or leaking.
    EXPECT_GT(result.acceptedCorrect, 0u);
    EXPECT_EQ(result.stats.messages, result.totalMessages);

    // And the default fanout handles the same workload well.
    core::MonitorConfig defaults;
    eval::DatasetResult healthy =
        eval::runDataset(models(), config, defaults);
    EXPECT_GE(static_cast<double>(healthy.acceptedCorrect) /
                  static_cast<double>(healthy.totalTasks),
              0.8);
}

TEST(Robustness, MonitorFinishIsIdempotentAfterWork)
{
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 6;
    config.seed = 97;
    eval::GeneratedDataset dataset = eval::generateDataset(config);
    core::WorkflowMonitor monitor(core::MonitorConfig{},
                                  models().catalog,
                                  models().automataCopy());
    for (const logging::LogRecord &record : dataset.stream)
        monitor.feed(record);
    monitor.finish();
    EXPECT_TRUE(monitor.finish().empty());
    EXPECT_TRUE(monitor.finish().empty());
}

TEST(Robustness, InterleavedMonitorsAreIndependent)
{
    // Two monitors over the same stream must not interfere (no hidden
    // global state anywhere in the checking stack).
    eval::DatasetConfig config;
    config.users = 2;
    config.tasksPerUser = 8;
    config.seed = 101;
    eval::GeneratedDataset dataset = eval::generateDataset(config);

    core::WorkflowMonitor a(core::MonitorConfig{}, models().catalog,
                            models().automataCopy());
    core::WorkflowMonitor b(core::MonitorConfig{}, models().catalog,
                            models().automataCopy());
    std::size_t accepted_a = 0;
    std::size_t accepted_b = 0;
    for (const logging::LogRecord &record : dataset.stream) {
        for (const core::MonitorReport &report : a.feed(record)) {
            if (report.event.kind == core::CheckEventKind::Accepted)
                ++accepted_a;
        }
        for (const core::MonitorReport &report : b.feed(record)) {
            if (report.event.kind == core::CheckEventKind::Accepted)
                ++accepted_b;
        }
    }
    EXPECT_EQ(accepted_a, accepted_b);
    EXPECT_EQ(a.stats().decisive, b.stats().decisive);
}
