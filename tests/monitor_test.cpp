/**
 * @file
 * Unit tests for the WorkflowMonitor facade: record parsing, clock
 * handling, line-oriented feeding, report rendering, and statistics.
 */

#include <gtest/gtest.h>

#include "core/monitor/workflow_monitor.hpp"
#include "logging/log_codec.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

namespace {

/**
 * Monitor fixture over a hand-built two-step "ping" workflow:
 *   svc-a "ping <uuid>"  ->  svc-b "pong <uuid>".
 */
class MonitorTest : public ::testing::Test
{
  protected:
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();
    std::unique_ptr<WorkflowMonitor> monitor;
    logging::RecordId nextRecord = 1;

    void
    SetUp() override
    {
        logging::TemplateId ping = catalog->intern("svc-a",
                                                   "ping <uuid>");
        logging::TemplateId pong = catalog->intern("svc-b",
                                                   "pong <uuid>");
        std::vector<EventNode> events = {{ping, 0}, {pong, 0}};
        std::vector<DependencyEdge> edges = {{0, 1, true}};
        std::vector<TaskAutomaton> automata;
        automata.emplace_back("ping-pong", std::move(events),
                              std::move(edges));
        MonitorConfig config;
        config.timeoutSeconds = 10.0;
        monitor = std::make_unique<WorkflowMonitor>(config, catalog,
                                                    std::move(automata));
    }

    logging::LogRecord
    record(const std::string &service, const std::string &body,
           double t, logging::LogLevel level = logging::LogLevel::Info)
    {
        logging::LogRecord out;
        out.id = nextRecord++;
        out.timestamp = t;
        out.node = "controller";
        out.service = service;
        out.level = level;
        out.body = body;
        return out;
    }

    static const char *
    uuid(int which)
    {
        return which == 1 ? "11111111-1111-1111-1111-111111111111"
                          : "22222222-2222-2222-2222-222222222222";
    }
};

} // namespace

TEST_F(MonitorTest, AcceptsOneSequence)
{
    auto r1 = monitor->feed(record("svc-a",
                                   std::string("ping ") + uuid(1), 1.0));
    EXPECT_TRUE(r1.empty());
    auto r2 = monitor->feed(record("svc-b",
                                   std::string("pong ") + uuid(1), 2.0));
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_EQ(r2[0].event.kind, CheckEventKind::Accepted);
    EXPECT_EQ(r2[0].event.taskName, "ping-pong");
    EXPECT_EQ(monitor->stats().accepted, 1u);
    EXPECT_EQ(monitor->activeGroups(), 0u);
}

TEST_F(MonitorTest, InterleavedSequencesSeparatedByUuid)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    monitor->feed(record("svc-a", std::string("ping ") + uuid(2), 1.1));
    auto r1 = monitor->feed(
        record("svc-b", std::string("pong ") + uuid(2), 1.2));
    ASSERT_EQ(r1.size(), 1u);
    auto r2 = monitor->feed(
        record("svc-b", std::string("pong ") + uuid(1), 1.3));
    ASSERT_EQ(r2.size(), 1u);
    EXPECT_EQ(monitor->stats().accepted, 2u);
}

TEST_F(MonitorTest, TimeoutDrivenByRecordTimestamps)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    // An unrelated record far in the future advances the clock and
    // fires the timeout criterion for the stale group.
    auto reports = monitor->feed(
        record("svc-a", std::string("ping ") + uuid(2), 30.0));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Timeout);
    EXPECT_FALSE(reports[0].endOfStream);
}

TEST_F(MonitorTest, ClockNeverMovesBackwards)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 5.0));
    // A slightly-late record (shipping skew) must not rewind the clock
    // or crash the sweeps.
    auto reports = monitor->feed(
        record("svc-a", std::string("ping ") + uuid(2), 4.8));
    EXPECT_TRUE(reports.empty());
    EXPECT_EQ(monitor->activeGroups(), 2u);
}

TEST_F(MonitorTest, FinishFlushesAsEndOfStream)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    auto reports = monitor->finish();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Timeout);
    EXPECT_TRUE(reports[0].endOfStream);
    EXPECT_TRUE(monitor->finish().empty()) << "finish is idempotent";
}

TEST_F(MonitorTest, ErrorRecordTriggersErrorCriterion)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    auto reports = monitor->feed(record(
        "svc-a", std::string("exploded on ") + uuid(1), 1.5,
        logging::LogLevel::Error));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::ErrorDetected);
    EXPECT_EQ(reports[0].event.taskName, "ping-pong");
}

TEST_F(MonitorTest, FeedLineParsesTheWireFormat)
{
    logging::LogRecord r1 =
        record("svc-a", std::string("ping ") + uuid(1), 1.0);
    logging::LogRecord r2 =
        record("svc-b", std::string("pong ") + uuid(1), 2.0);
    EXPECT_TRUE(
        monitor->feedLine(logging::encodeLogLine(r1)).empty());
    auto reports = monitor->feedLine(logging::encodeLogLine(r2));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].event.kind, CheckEventKind::Accepted);
}

TEST_F(MonitorTest, FeedLineCountsMalformedInput)
{
    EXPECT_TRUE(monitor->feedLine("not a log line").empty());
    EXPECT_EQ(monitor->malformedLines(), 1u);
}

TEST_F(MonitorTest, UnknownTemplatesPassThrough)
{
    auto reports = monitor->feed(
        record("svc-c", "background audit noise", 1.0));
    EXPECT_TRUE(reports.empty());
    EXPECT_EQ(monitor->stats().recoveredPassUnknown, 1u);
}

TEST_F(MonitorTest, ReportRenderingIncludesContext)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    auto reports = monitor->finish();
    ASSERT_EQ(reports.size(), 1u);
    std::string summary = reports[0].summary(monitor->catalog());
    EXPECT_NE(summary.find("TIMEOUT"), std::string::npos);
    EXPECT_NE(summary.find("ping-pong"), std::string::npos);
    EXPECT_NE(summary.find("end-of-stream"), std::string::npos);

    std::string detail = reports[0].describe(monitor->catalog());
    EXPECT_NE(detail.find("expected next"), std::string::npos);
    EXPECT_NE(detail.find("svc-b: pong <uuid>"), std::string::npos);
}

TEST_F(MonitorTest, AcceptedSummaryNamesTask)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    auto reports = monitor->feed(
        record("svc-b", std::string("pong ") + uuid(1), 1.2));
    ASSERT_EQ(reports.size(), 1u);
    std::string summary = reports[0].summary(monitor->catalog());
    EXPECT_NE(summary.find("ACCEPTED"), std::string::npos);
    EXPECT_NE(summary.find("task=ping-pong"), std::string::npos);
    EXPECT_NE(summary.find("messages=2"), std::string::npos);
}

TEST_F(MonitorTest, StatsDecisiveFraction)
{
    monitor->feed(record("svc-a", std::string("ping ") + uuid(1), 1.0));
    monitor->feed(record("svc-b", std::string("pong ") + uuid(1), 1.1));
    const CheckerStats &stats = monitor->stats();
    EXPECT_EQ(stats.messages, 2u);
    EXPECT_EQ(stats.decisive, 1u);
    EXPECT_EQ(stats.recoveredNewSequence, 1u);
    EXPECT_DOUBLE_EQ(stats.decisiveFraction(), 0.5);
}
