/**
 * @file
 * Tests for seer-prove, the static interference & ambiguity analysis
 * (DESIGN.md §15): injected cross-task ambiguity raises SL020/SL021,
 * the growth bound (SL022) and dead-end anchors (SL023) fire on
 * constructed models, the golden bundles pass the gate, the
 * AmbiguityCertificate round-trips through model_io, and — the
 * acceptance property — the checker's certified fast path is
 * bit-identical to the reference path on adversarial identifier
 * streams and perturbed multi-seed wire streams.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/interference.hpp"
#include "collect/stream_perturber.hpp"
#include "core/checker/interleaved_checker.hpp"
#include "core/mining/model_builder.hpp"
#include "core/mining/model_io.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "eval/accuracy_harness.hpp"
#include "eval/modeling_harness.hpp"
#include "test_util.hpp"

using namespace cloudseer;
using namespace cloudseer::core;
using cloudseer::analysis::AmbiguityCertificate;
using cloudseer::analysis::Diagnostic;
using cloudseer::analysis::InterferenceOptions;
using cloudseer::analysis::InterferenceResult;
using cloudseer::analysis::LintReport;
using cloudseer::analysis::Severity;
using cloudseer::analysis::SignatureIdClass;
using cloudseer::analysis::SignatureVerdictKind;
using cloudseer::testutil::LetterCatalog;
using cloudseer::testutil::internIds;
using cloudseer::testutil::makeLetterAutomaton;
using cloudseer::testutil::makeMessage;

namespace {

/** Count findings with the given ID at the given severity. */
std::size_t
countId(const LintReport &report, const std::string &id,
        Severity severity)
{
    std::size_t n = 0;
    for (const Diagnostic *diagnostic : report.withId(id)) {
        if (diagnostic->severity == severity)
            ++n;
    }
    return n;
}

/**
 * The injected-ambiguity fixture: two tasks sharing an
 * identifier-free two-step template chain S -> T. Nothing separates
 * the tasks (no identifiers, same templates, same order), so the
 * product walk must find joint ambiguous runs (SL020), the collision
 * scan inseparable sharing (SL021), and the growth bound a
 * multiplicative chain (SL022).
 */
std::vector<TaskAutomaton>
interferingPair(LetterCatalog &letters)
{
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "alpha", {"S", "T"},
                                         {{"S", "T"}}));
    bundle.push_back(makeLetterAutomaton(letters, "beta", {"S", "T"},
                                         {{"S", "T"}}));
    return bundle;
}

/** A chain automaton over fresh uuid-separated templates. */
TaskAutomaton
uuidChain(logging::TemplateCatalog &catalog, const std::string &name,
          const std::vector<std::string> &steps)
{
    std::vector<EventNode> events;
    std::vector<DependencyEdge> edges;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        events.push_back({catalog.intern("svc", steps[i] + " <uuid>"), 0});
        if (i > 0) {
            edges.push_back({static_cast<int>(i) - 1,
                             static_cast<int>(i), false});
        }
    }
    return TaskAutomaton(name, std::move(events), std::move(edges));
}

} // namespace

// --- injected ambiguity (the tentpole acceptance case) ------------------

TEST(SeerProve, InjectedAmbiguityRaisesSL020AndSL021)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle = interferingPair(letters);
    InterferenceResult result =
        analysis::analyzeInterference(bundle, *letters.catalog);

    // Both shared templates are identifier-free, so the joint runs
    // are inseparable: SL020 at Warning, SL021 at Warning per shared
    // template.
    EXPECT_GE(countId(result.report, "SL020", Severity::Warning), 1u);
    EXPECT_EQ(countId(result.report, "SL021", Severity::Warning), 2u);
    EXPECT_FALSE(result.report.hasErrors());

    // Nothing certifies: every signature is shared and unidentified.
    EXPECT_EQ(result.certificate.certifiedCount(), 0u);
    for (const auto &verdict : result.certificate.verdicts)
        EXPECT_NE(verdict.kind,
                  SignatureVerdictKind::CertifiedUnambiguous);
}

TEST(SeerProve, SL022FlagsMultiplicativeGrowthChain)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle = interferingPair(letters);
    InterferenceResult result =
        analysis::analyzeInterference(bundle, *letters.catalog);

    // S -> T is a directed path of two inseparable-shared events in
    // each automaton: one SL022 per automaton, with a multiplicative
    // bound of at least sites(S) x sites(T) = 4.
    ASSERT_EQ(countId(result.report, "SL022", Severity::Warning), 2u);
    for (const Diagnostic *finding : result.report.withId("SL022"))
        EXPECT_GE(finding->metrics.at("bound"), 4.0);
}

TEST(SeerProve, SL023FlagsMidstreamDivergenceAnchor)
{
    // B is a non-initial event of alpha and the *initial* event of
    // beta: recovery (b) at B forks a fresh beta hypothesis that can
    // never be separated from alpha's own B (no identifiers).
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(makeLetterAutomaton(letters, "alpha", {"A", "B"},
                                         {{"A", "B"}}));
    bundle.push_back(makeLetterAutomaton(letters, "beta", {"B", "C"},
                                         {{"B", "C"}}));
    InterferenceResult result =
        analysis::analyzeInterference(bundle, *letters.catalog);
    EXPECT_GE(countId(result.report, "SL023", Severity::Warning), 1u);
}

TEST(SeerProve, UuidSeparatedTemplatesCertify)
{
    logging::TemplateCatalog catalog;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(
        uuidChain(catalog, "boot", {"boot begin", "boot end"}));
    bundle.push_back(
        uuidChain(catalog, "stop", {"stop begin", "stop end"}));
    InterferenceResult result =
        analysis::analyzeInterference(bundle, catalog);

    EXPECT_TRUE(result.report.diagnostics.empty())
        << result.report.toText();
    EXPECT_EQ(result.certificate.verdicts.size(), 4u);
    EXPECT_EQ(result.certificate.certifiedCount(), 4u);
    for (const auto &verdict : result.certificate.verdicts)
        EXPECT_TRUE(result.certificate.certified(verdict.tpl));
}

TEST(SeerProve, TemplateClassification)
{
    EXPECT_EQ(analysis::classifyTemplate("instance <uuid> booted", false),
              SignatureIdClass::Instance);
    EXPECT_EQ(analysis::classifyTemplate("request from <ip>", false),
              SignatureIdClass::SharedOnly);
    EXPECT_EQ(analysis::classifyTemplate("worker pool drained", false),
              SignatureIdClass::None);
    EXPECT_EQ(analysis::classifyTemplate("retry attempt <num>", false),
              SignatureIdClass::None);
    EXPECT_EQ(analysis::classifyTemplate("retry attempt <num>", true),
              SignatureIdClass::Instance);
}

// --- diagnostic catalog parity ------------------------------------------

TEST(SeerProve, CatalogResolvesEveryProveId)
{
    for (const char *id : {"SL020", "SL021", "SL022", "SL023"}) {
        const analysis::DiagnosticInfo *info = analysis::diagnosticInfo(id);
        ASSERT_NE(info, nullptr) << id;
        EXPECT_NE(std::string(info->title), "");
        EXPECT_NE(std::string(info->rationale), "");
        EXPECT_EQ(info->maxSeverity, Severity::Warning);
    }

    // Every finding the analysis emits resolves in the catalog and
    // respects the catalog's severity ceiling (seer_lint --list and
    // --explain are driven from the same table, so this is the
    // catalog-drift guard).
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle = interferingPair(letters);
    bundle.push_back(makeLetterAutomaton(letters, "gamma", {"T", "U"},
                                         {{"T", "U"}}));
    InterferenceResult result =
        analysis::analyzeInterference(bundle, *letters.catalog);
    ASSERT_FALSE(result.report.diagnostics.empty());
    for (const Diagnostic &diagnostic : result.report.diagnostics) {
        const analysis::DiagnosticInfo *info =
            analysis::diagnosticInfo(diagnostic.id);
        ASSERT_NE(info, nullptr) << diagnostic.id;
        EXPECT_LE(static_cast<int>(diagnostic.severity),
                  static_cast<int>(info->maxSeverity))
            << diagnostic.id;
    }
}

// --- mine-time hook -----------------------------------------------------

TEST(SeerProve, VerifierFlagsInterferingPairAtMineTime)
{
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle = interferingPair(letters);
    auto verifier = analysis::makeInterferenceVerifier();

    // First automaton alone interferes with nothing.
    EXPECT_TRUE(verifier(bundle[0], *letters.catalog).empty());

    // The second shares its whole signature: findings name SL02x.
    std::vector<std::string> findings =
        verifier(bundle[1], *letters.catalog);
    ASSERT_FALSE(findings.empty());
    bool mentions_prove = false;
    for (const std::string &finding : findings) {
        if (finding.find("SL02") != std::string::npos)
            mentions_prove = true;
    }
    EXPECT_TRUE(mentions_prove) << findings.front();
}

// --- certificate persistence (model_io) ---------------------------------

TEST(SeerProveCertificate, RoundTripsThroughModelIo)
{
    logging::TemplateCatalog catalog;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(
        uuidChain(catalog, "boot", {"boot begin", "boot end"}));

    InterferenceResult result =
        analysis::analyzeInterference(bundle, catalog);
    result.certificate.modelFingerprint = 0xfeedbeefu;

    std::ostringstream out;
    saveModels(out, catalog, bundle, {}, result.certificate.toRecord());
    std::istringstream in(out.str());
    auto loaded = loadModels(in);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_TRUE(loaded->certificate.present);
    EXPECT_EQ(loaded->certificate.fingerprint, 0xfeedbeefu);
    EXPECT_EQ(loaded->certificate.verdicts.size(),
              result.certificate.verdicts.size());

    auto reloaded_opt =
        AmbiguityCertificate::fromRecord(loaded->certificate);
    ASSERT_TRUE(reloaded_opt.has_value());
    const AmbiguityCertificate &reloaded = *reloaded_opt;
    EXPECT_EQ(reloaded.certifiedCount(),
              result.certificate.certifiedCount());
    // Template ids can be remapped on load; compare through the
    // certified() view over the loaded catalog rather than raw ids.
    std::size_t certified_loaded = 0;
    for (logging::TemplateId tpl = 0; tpl < loaded->catalog->size();
         ++tpl)
        certified_loaded += reloaded.certified(tpl) ? 1u : 0u;
    EXPECT_EQ(certified_loaded, result.certificate.certifiedCount());
}

TEST(SeerProveCertificate, LegacyFormatLoadsWithoutCertificate)
{
    logging::TemplateCatalog catalog;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(
        uuidChain(catalog, "boot", {"boot begin", "boot end"}));

    std::ostringstream out;
    saveModels(out, catalog, bundle, {});
    std::istringstream in(out.str());
    auto loaded = loadModels(in);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_FALSE(loaded->certificate.present);
    EXPECT_TRUE(loaded->certificate.verdicts.empty());

    // An absent certificate writes a byte-identical legacy file.
    std::ostringstream legacy;
    saveModels(legacy, catalog, bundle, {}, core::CertificateRecord{});
    EXPECT_EQ(legacy.str(), out.str());
}

// --- golden bundles (the CI gate) ---------------------------------------

namespace {

InterferenceResult
proveGoldenFile(const std::string &relative)
{
    std::string path =
        std::string(CLOUDSEER_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    auto bundle = loadModels(in);
    EXPECT_TRUE(bundle.has_value()) << "unparseable bundle " << path;
    InterferenceOptions options;
    options.maxForkFanout = kDefaultMaxForkFanout;
    return analysis::analyzeInterference(bundle->automata,
                                         *bundle->catalog, options);
}

} // namespace

TEST(SeerProveGolden, HandcraftedBundleCleanAndFullyCertified)
{
    InterferenceResult result =
        proveGoldenFile("tests/golden/handcrafted.model");
    EXPECT_TRUE(result.report.diagnostics.empty())
        << result.report.toText();
    EXPECT_GT(result.certificate.verdicts.size(), 0u);
    EXPECT_EQ(result.certificate.certifiedCount(),
              result.certificate.verdicts.size())
        << "handcrafted templates are all uuid-separated";
}

TEST(SeerProveGolden, MinedBundlePassesTheWerrorGate)
{
    InterferenceResult result =
        proveGoldenFile("tests/golden/mined_tasks.model");
    EXPECT_FALSE(result.report.hasErrors()) << result.report.toText();
    EXPECT_EQ(result.report.count(Severity::Warning), 0u)
        << result.report.toText();
    // Most mined signatures are uuid-separated; a healthy majority
    // certifies (the exact count is pinned by the CLI golden test).
    EXPECT_GT(result.certificate.certifiedCount(),
              result.certificate.verdicts.size() / 2);
}

TEST(SeerProveGolden, FreshlyMinedModelsProveClean)
{
    // Mine a small bundle from scratch (reduced Table 2 pipeline) and
    // prove the miner's output: uuid-separated phases certify.
    logging::TemplateCatalog catalog;
    TaskModeler modeler(catalog);
    logging::TemplateId s1 = catalog.intern("svc", "phase one <uuid>");
    logging::TemplateId s2 = catalog.intern("svc", "phase two <uuid>");
    logging::TemplateId s3 = catalog.intern("svc", "phase three <uuid>");
    std::vector<TemplateSequence> runs(30, {s1, s2, s3});
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(modeler.buildAutomaton("pipeline", runs));
    InterferenceResult result =
        analysis::analyzeInterference(bundle, catalog);
    EXPECT_TRUE(result.report.diagnostics.empty())
        << result.report.toText();
    EXPECT_EQ(result.certificate.certifiedCount(), 3u);
}

// --- the fast path is bit-identical -------------------------------------

namespace {

/** Byte-exact fingerprint of everything a check event carries. */
std::string
fingerprint(const CheckEvent &event)
{
    std::string out;
    out += std::to_string(static_cast<int>(event.kind));
    out += '|';
    out += event.taskName;
    out += '|';
    for (const std::string &task : event.candidateTasks) {
        out += task;
        out += ',';
    }
    out += '|';
    for (logging::RecordId record : event.records) {
        out += std::to_string(record);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.frontierTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    out += '|';
    for (logging::TemplateId tpl : event.expectedTemplates) {
        out += std::to_string(tpl);
        out += ',';
    }
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "|%.9f|", event.time);
    out += time_buf;
    out += std::to_string(event.group);
    return out;
}

std::string
fingerprint(const MonitorReport &report)
{
    return fingerprint(report.event) +
           (report.endOfStream ? "|1" : "|0");
}

void
expectIdenticalEvents(const std::vector<CheckEvent> &fast,
                      const std::vector<CheckEvent> &slow,
                      const char *where, std::size_t step)
{
    ASSERT_EQ(fast.size(), slow.size())
        << where << " diverged at step " << step;
    for (std::size_t i = 0; i < fast.size(); ++i) {
        ASSERT_EQ(fingerprint(fast[i]), fingerprint(slow[i]))
            << where << " diverged at step " << step << " event " << i;
    }
}

void
expectIdenticalReports(const std::vector<MonitorReport> &fast,
                       const std::vector<MonitorReport> &slow,
                       const char *where, std::size_t step)
{
    ASSERT_EQ(fast.size(), slow.size())
        << where << " diverged at step " << step;
    for (std::size_t i = 0; i < fast.size(); ++i) {
        ASSERT_EQ(fingerprint(fast[i]), fingerprint(slow[i]))
            << where << " diverged at step " << step << " report " << i;
    }
}

void
expectIdenticalStats(const CheckerStats &a, const CheckerStats &b)
{
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.decisive, b.decisive);
    EXPECT_EQ(a.ambiguous, b.ambiguous);
    EXPECT_EQ(a.unmatched, b.unmatched);
    EXPECT_EQ(a.errorsReported, b.errorsReported);
    EXPECT_EQ(a.timeoutsReported, b.timeoutsReported);
    EXPECT_EQ(a.accepted, b.accepted);
}

const eval::ModeledSystem &
models()
{
    static eval::ModeledSystem system = [] {
        eval::ModelingConfig config;
        config.minRuns = 60;
        config.checkEvery = 20;
        config.stableChecks = 3;
        config.maxRuns = 300;
        return eval::buildModels(config);
    }();
    return system;
}

} // namespace

TEST(SeerProveFastPath, CheckerDifferentialOnAdversarialIds)
{
    // Certified uuid chains fed a hostile stream: identifiers that
    // collide across instances, messages that bridge two instances'
    // identifiers, an identifier-less message, and enough concurrency
    // that rival groups exist while certified messages flow. The
    // certified checker must match the reference byte for byte.
    logging::TemplateCatalog catalog;
    std::vector<TaskAutomaton> bundle;
    bundle.push_back(uuidChain(catalog, "boot",
                               {"boot begin", "boot mid", "boot end"}));
    bundle.push_back(uuidChain(catalog, "stop",
                               {"stop begin", "stop mid", "stop end"}));
    InterferenceResult proof =
        analysis::analyzeInterference(bundle, catalog);
    std::vector<char> bits = proof.certificate.certifiedBits(catalog.size());
    ASSERT_EQ(proof.certificate.certifiedCount(), 6u);

    CheckerConfig config;
    InterleavedChecker fast(config, {&bundle[0], &bundle[1]});
    InterleavedChecker slow(config, {&bundle[0], &bundle[1]});
    fast.setCertifiedTemplates(bits);
    EXPECT_EQ(fast.certifiedTemplateCount(), 6u);
    EXPECT_EQ(slow.certifiedTemplateCount(), 0u);

    auto msg = [&](const std::string &step,
                   const std::vector<std::string> &ids,
                   logging::RecordId record, common::SimTime time) {
        CheckMessage message;
        message.tpl = catalog.intern("svc", step + " <uuid>");
        message.identifiers = internIds(ids);
        message.record = record;
        message.time = time;
        return message;
    };

    std::vector<CheckMessage> stream;
    logging::RecordId record = 1;
    common::SimTime now = 0.0;
    for (int user = 0; user < 6; ++user) {
        std::string base = (user % 2 == 0) ? "boot" : "stop";
        std::string id = "vm-" + std::to_string(user);
        for (const char *phase : {" begin", " mid", " end"}) {
            now += 0.05;
            std::vector<std::string> ids = {id};
            if (user == 2 && std::string(phase) == " mid")
                ids.push_back("vm-0"); // bridge two instances
            if (user == 3 && std::string(phase) == " mid")
                ids.clear(); // identifier-less: ambiguous selection
            if (user == 4)
                ids.push_back("shared-host"); // repeated shared token
            stream.push_back(msg(base + phase, ids, record++, now));
        }
    }

    for (std::size_t i = 0; i < stream.size(); ++i) {
        std::vector<CheckEvent> a = fast.feed(stream[i]);
        std::vector<CheckEvent> b = slow.feed(stream[i]);
        expectIdenticalEvents(a, b, "feed", i);
    }
    expectIdenticalEvents(fast.finish(now + 60.0),
                          slow.finish(now + 60.0), "finish",
                          stream.size());
    expectIdenticalStats(fast.stats(), slow.stats());
    EXPECT_GT(fast.stats().accepted, 0u)
        << "no acceptances; the differential is vacuous";
}

TEST(SeerProveFastPath, MonitorDifferentialOnPerturbedStreams)
{
    // The monitor-level property across perturbation seeds: a monitor
    // with the fast path armed (the default) is indistinguishable
    // from one with it off, on hostile wire streams, serial and
    // sharded engines alike.
    const eval::ModeledSystem &system = models();
    for (std::uint64_t seed : {11ull, 2024ull}) {
        eval::DatasetConfig dataset_config;
        dataset_config.users = 3;
        dataset_config.tasksPerUser = 20;
        dataset_config.seed = 900 + seed;
        eval::GeneratedDataset dataset =
            eval::generateDataset(dataset_config);

        collect::PerturbationConfig adversity;
        adversity.dropProbability = 0.02;
        adversity.duplicateProbability = 0.02;
        adversity.clockSkewMaxSeconds = 0.05;
        adversity.seed = seed;
        collect::StreamPerturber perturber(adversity);
        collect::PerturbedStream wire = perturber.apply(dataset.stream);
        ASSERT_FALSE(wire.lines.empty());

        MonitorConfig proved;
        proved.ingest = hardenedIngestDefaults();
        proved.ingest.numShards = (seed % 2 == 0) ? 3 : 0;
        proved.ingest.shardRingCapacity = 16;
        ASSERT_TRUE(proved.proveFastPath) << "fast path must default on";
        MonitorConfig reference = proved;
        reference.proveFastPath = false;

        WorkflowMonitor fast(proved, system.catalog,
                             system.automataCopy());
        WorkflowMonitor slow(reference, system.catalog,
                             system.automataCopy());

        for (std::size_t i = 0; i < wire.lines.size(); ++i) {
            std::vector<MonitorReport> a = fast.feedLine(wire.lines[i]);
            std::vector<MonitorReport> b = slow.feedLine(wire.lines[i]);
            expectIdenticalReports(a, b, "wire-feed", i);
        }
        expectIdenticalReports(fast.finish(), slow.finish(),
                               "wire-finish", wire.lines.size());
        expectIdenticalStats(fast.stats(), slow.stats());
    }
}

TEST(SeerProveFastPath, MonitorLoadReportCarriesProveFindings)
{
    // The load-time hook merges SL02x findings into loadLint() and
    // the injected-ambiguity pair still *starts* (warnings don't
    // gate), mirroring the seer-lint error-only refusal contract.
    LetterCatalog letters;
    std::vector<TaskAutomaton> bundle = interferingPair(letters);
    MonitorConfig config;
    WorkflowMonitor monitor(config, letters.catalog, std::move(bundle));
    EXPECT_FALSE(monitor.loadLint().hasErrors());
    EXPECT_FALSE(monitor.loadLint().withId("SL020").empty());
    EXPECT_FALSE(monitor.loadLint().withId("SL021").empty());
}
