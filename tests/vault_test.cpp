/**
 * @file
 * Unit and property tests for seer-vault (DESIGN.md §13): the binary
 * frame codec and its torn-tail semantics, write-ahead ledger and
 * checkpoint round-trips, interner and monitor state identity under
 * randomized workloads, and the headline restore-fidelity contract —
 * a VaultedMonitor killed at an arbitrary point and reconstructed
 * over the same directory emits verdicts bit-identical to an
 * uninterrupted run, for randomized kill points, checkpoint cadences,
 * torn ledger tails, and models with and without latency profiles.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/binio.hpp"
#include "common/rng.hpp"
#include "core/mining/latency_profile.hpp"
#include "core/monitor/report_json.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "logging/identifier_interner.hpp"
#include "vault/vault.hpp"
#include "vault/vaulted_monitor.hpp"

using namespace cloudseer;
using namespace cloudseer::core;

namespace {

/** Fresh per-test scratch directory under the system temp root. */
class VaultDir
{
  public:
    explicit VaultDir(const std::string &name)
        : path((std::filesystem::temp_directory_path() /
                ("cloudseer_" + name))
                   .string())
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }

    ~VaultDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    const std::string path;
};

/** Bitwise reference CRC-32, for checking the sliced table version. */
std::uint32_t
referenceCrc32(std::string_view data)
{
    std::uint32_t crc = 0xFFFFFFFFu;
    for (unsigned char byte : data) {
        crc ^= byte;
        for (int k = 0; k < 8; ++k)
            crc = (crc & 1u) ? 0xEDB88320u ^ (crc >> 1) : crc >> 1;
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace

// --- binio ----------------------------------------------------------

TEST(BinioTest, Crc32KnownAnswer)
{
    // The standard CRC-32 check value (zlib/PNG convention).
    EXPECT_EQ(common::crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(common::crc32(""), 0u);
}

TEST(BinioTest, Crc32MatchesBitwiseReferenceAtEveryLength)
{
    // The production crc32 folds four bytes per step with a tail
    // loop; sweep lengths 0..64 so every word/tail split is hit.
    std::string data;
    common::Rng rng(7);
    for (int len = 0; len <= 64; ++len) {
        EXPECT_EQ(common::crc32(data), referenceCrc32(data))
            << "length " << len;
        data.push_back(static_cast<char>(rng.uniformInt(0, 255)));
    }
}

TEST(BinioTest, WriterReaderRoundTrip)
{
    common::BinWriter out;
    out.writeU8(0xAB);
    out.writeU32(0xDEADBEEFu);
    out.writeU64(0x0123456789ABCDEFull);
    out.writeI64(-42);
    out.writeF64(3.25);
    out.writeBool(true);
    out.writeString("hello vault");
    out.writeU32Vector({1, 2, 3});
    out.writeU64Vector({});

    common::BinReader in(out.bytes());
    EXPECT_EQ(in.readU8(), 0xAB);
    EXPECT_EQ(in.readU32(), 0xDEADBEEFu);
    EXPECT_EQ(in.readU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(in.readI64(), -42);
    EXPECT_EQ(in.readF64(), 3.25);
    EXPECT_TRUE(in.readBool());
    EXPECT_EQ(in.readString(), "hello vault");
    EXPECT_EQ(in.readU32Vector(), (std::vector<std::uint32_t>{1, 2, 3}));
    EXPECT_TRUE(in.readU64Vector().empty());
    EXPECT_TRUE(in.ok());
    EXPECT_TRUE(in.atEnd());
}

TEST(BinioTest, ReaderFailureIsSticky)
{
    common::BinWriter out;
    out.writeU32(7);
    common::BinReader in(out.bytes());
    EXPECT_EQ(in.readU64(), 0u); // runs past the 4 available bytes
    EXPECT_FALSE(in.ok());
    EXPECT_EQ(in.readU32(), 0u); // still failed, still zero
    EXPECT_FALSE(in.ok());
}

// --- frame codec ----------------------------------------------------

TEST(FrameTest, ScanRoundTripAndTornTail)
{
    VaultDir dir("frame_test");
    std::string path = dir.path + "/frames.bin";
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(vault::writeFileHeader(out, vault::kLedgerMagic));
        vault::appendFrame(out, "alpha");
        vault::appendFrame(out, "beta");
        vault::appendFrame(out, "gamma");
    }
    vault::FrameScan scan = vault::scanFrames(path,
                                              vault::kLedgerMagic);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.frames.size(), 3u);
    EXPECT_EQ(scan.frames[1], "beta");

    // Chop mid-way through the last frame: the crash signature. The
    // intact prefix survives; the tail is reported, not interpreted.
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 3);
    scan = vault::scanFrames(path, vault::kLedgerMagic);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.torn);
    EXPECT_GT(scan.tornBytes, 0u);
    ASSERT_EQ(scan.frames.size(), 2u);
    EXPECT_EQ(scan.frames[1], "beta");
}

TEST(FrameTest, CorruptPayloadStopsScanAtChecksum)
{
    VaultDir dir("frame_corrupt");
    std::string path = dir.path + "/frames.bin";
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(vault::writeFileHeader(out, vault::kLedgerMagic));
        vault::appendFrame(out, "first");
        vault::appendFrame(out, "second");
    }
    // Flip one payload byte of the second frame.
    std::fstream patch(path,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(-1, std::ios::end);
    patch.put('X');
    patch.close();

    vault::FrameScan scan = vault::scanFrames(path,
                                              vault::kLedgerMagic);
    EXPECT_TRUE(scan.torn);
    ASSERT_EQ(scan.frames.size(), 1u);
    EXPECT_EQ(scan.frames[0], "first");
}

TEST(FrameTest, WrongMagicRefusesFile)
{
    VaultDir dir("frame_magic");
    std::string path = dir.path + "/frames.bin";
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(
            vault::writeFileHeader(out, vault::kCheckpointMagic));
        vault::appendFrame(out, "payload");
    }
    vault::FrameScan scan = vault::scanFrames(path,
                                              vault::kLedgerMagic);
    EXPECT_FALSE(scan.headerOk);
    EXPECT_TRUE(scan.frames.empty());
}

// --- write-ahead ledger ---------------------------------------------

TEST(LedgerTest, AppendReadRoundTrip)
{
    VaultDir dir("ledger_roundtrip");
    std::string path = vault::ledgerPath(dir.path);

    logging::LogRecord record;
    record.id = 42;
    record.timestamp = 1.5;
    record.node = "node-1";
    record.service = "svc";
    record.level = logging::LogLevel::Warning;
    record.body = "worker stalled";

    {
        vault::WriteAheadLedger ledger(path);
        ASSERT_TRUE(ledger.open());
        ledger.appendLine(1, "raw wire line");
        ledger.appendRecord(2, record);
        ledger.appendLine(3, "");
        // No explicit flush: the destructor group-commits the batch,
        // so an orderly shutdown loses nothing.
    }

    vault::LedgerScan scan = vault::readLedger(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.inputs.size(), 3u);
    EXPECT_EQ(scan.inputs[0].kind, vault::LedgerEntry::RawLine);
    EXPECT_EQ(scan.inputs[0].seq, 1u);
    EXPECT_EQ(scan.inputs[0].line, "raw wire line");
    EXPECT_EQ(scan.inputs[1].kind, vault::LedgerEntry::Record);
    EXPECT_EQ(scan.inputs[1].seq, 2u);
    EXPECT_EQ(scan.inputs[1].record.id, 42u);
    EXPECT_EQ(scan.inputs[1].record.level,
              logging::LogLevel::Warning);
    EXPECT_EQ(scan.inputs[1].record.body, "worker stalled");
    EXPECT_EQ(scan.inputs[2].line, "");
}

TEST(LedgerTest, RotateEmptiesAndDiscardsPending)
{
    VaultDir dir("ledger_rotate");
    std::string path = vault::ledgerPath(dir.path);
    vault::WriteAheadLedger ledger(path);
    ASSERT_TRUE(ledger.open());
    ledger.appendLine(1, "flushed");
    ledger.flush();
    ledger.appendLine(2, "still pending");
    ASSERT_TRUE(ledger.rotate());

    vault::LedgerScan scan = vault::readLedger(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.inputs.empty());

    // The ledger stays appendable after rotation.
    ledger.appendLine(3, "post-rotation");
    ledger.flush();
    scan = vault::readLedger(path);
    ASSERT_EQ(scan.inputs.size(), 1u);
    EXPECT_EQ(scan.inputs[0].seq, 3u);
}

// --- checkpoint files -----------------------------------------------

TEST(CheckpointTest, WriteReadRoundTrip)
{
    VaultDir dir("ckpt_roundtrip");
    std::string path = vault::checkpointPath(dir.path);

    vault::CheckpointMeta meta;
    meta.modelFingerprint = 0xFEEDFACEull;
    meta.coveredSeq = 128;
    meta.monitorTime = 99.5;
    std::vector<std::pair<vault::CheckpointSection, std::string>>
        sections;
    sections.emplace_back(vault::CheckpointSection::Meta,
                          vault::encodeMeta(meta));
    sections.emplace_back(vault::CheckpointSection::Interner,
                          std::string("interner-bytes"));
    sections.emplace_back(vault::CheckpointSection::Monitor,
                          std::string("monitor-bytes"));
    std::uint64_t bytes = vault::writeCheckpoint(path, sections);
    EXPECT_GT(bytes, 0u);
    EXPECT_EQ(bytes, std::filesystem::file_size(path));

    vault::CheckpointScan scan = vault::readCheckpoint(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.complete);
    ASSERT_TRUE(scan.hasMeta);
    EXPECT_EQ(scan.meta.modelFingerprint, 0xFEEDFACEull);
    EXPECT_EQ(scan.meta.coveredSeq, 128u);
    EXPECT_EQ(scan.meta.monitorTime, 99.5);
    ASSERT_EQ(scan.sections.size(), 3u);
    EXPECT_EQ(scan.sections[1].second, "interner-bytes");
}

TEST(CheckpointTest, MissingTerminatorMeansIncomplete)
{
    VaultDir dir("ckpt_incomplete");
    std::string path = vault::checkpointPath(dir.path);
    vault::CheckpointMeta meta;
    ASSERT_GT(vault::writeCheckpoint(
                  path, {{vault::CheckpointSection::Meta,
                          vault::encodeMeta(meta)}}),
              0u);
    // Drop the End frame (4-byte kind + 8-byte frame header).
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 12);
    vault::CheckpointScan scan = vault::readCheckpoint(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_FALSE(scan.complete);
    EXPECT_TRUE(scan.hasMeta);
}

// --- interner snapshot/restore --------------------------------------

TEST(InternerVaultTest, SnapshotRestoreIsIdentityUnderRandomWorkload)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        common::Rng rng(seed);
        logging::IdentifierInterner source;
        // Randomized workload with repeats, so hits and misses both
        // accumulate; a small capacity on some seeds exercises the
        // rejection path too.
        if (seed % 2 == 0)
            source.setCapacity(12);
        std::vector<std::string> pool;
        for (int i = 0; i < 20; ++i)
            pool.push_back("id-" + std::to_string(seed) + "-" +
                           std::to_string(rng.uniformInt(0, 15)));
        std::vector<logging::IdToken> sourceTokens;
        for (const std::string &value : pool)
            sourceTokens.push_back(source.intern(value));
        if (seed % 2 == 0) {
            // Deterministically overflow the 12-entry capacity so
            // the rejection tally is exercised regardless of how
            // many distinct values the random pool produced.
            for (int i = 0; i < 13; ++i)
                source.intern("spill-" + std::to_string(i));
        }

        common::BinWriter out;
        source.snapshotState(out);
        logging::IdentifierInterner restored;
        common::BinReader in(out.bytes());
        ASSERT_TRUE(restored.restoreState(in)) << "seed " << seed;
        EXPECT_TRUE(in.atEnd());

        EXPECT_EQ(restored.size(), source.size());
        EXPECT_EQ(restored.stats().hits, source.stats().hits);
        EXPECT_EQ(restored.stats().misses, source.stats().misses);
        EXPECT_EQ(restored.stats().capacity, source.stats().capacity);
        EXPECT_EQ(restored.stats().capRejected,
                  source.stats().capRejected);
        for (logging::IdToken token = 0; token < source.size();
             ++token)
            EXPECT_EQ(restored.text(token), source.text(token));
        // Future interning behaves identically (same tokens, same
        // capacity enforcement) — the property that keeps a restored
        // monitor's eviction and routing decisions in lockstep.
        for (const std::string &value : pool)
            EXPECT_EQ(restored.intern(value), source.find(value));
        if (seed % 2 == 0) {
            EXPECT_GT(source.stats().capRejected, 0u);
            EXPECT_EQ(restored.intern("definitely-new-identifier"),
                      logging::kInvalidIdToken);
        }
    }
}

TEST(InternerVaultTest, RestoreRefusesDivergentExistingState)
{
    logging::IdentifierInterner source;
    source.intern("alpha");
    source.intern("beta");
    common::BinWriter out;
    source.snapshotState(out);

    logging::IdentifierInterner conflicting;
    conflicting.intern("gamma"); // takes token 0, conflicting with
                                 // the snapshot's "alpha"
    common::BinReader in(out.bytes());
    EXPECT_FALSE(conflicting.restoreState(in));
}

// --- monitor state round-trip and kill/restore fidelity --------------

namespace {

/**
 * Ping/pong monitor fixture mirroring monitor_test, plus a fork
 * model so groups hold real ambiguity when snapshots are taken.
 */
class VaultMonitorTest : public ::testing::Test
{
  protected:
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();

    std::vector<TaskAutomaton>
    automata()
    {
        logging::TemplateId ping =
            catalog->intern("svc-a", "ping <uuid>");
        logging::TemplateId pong =
            catalog->intern("svc-b", "pong <uuid>");
        logging::TemplateId ack =
            catalog->intern("svc-c", "ack <uuid>");
        std::vector<TaskAutomaton> out;
        out.emplace_back(
            "ping-pong",
            std::vector<EventNode>{{ping, 0}, {pong, 0}},
            std::vector<DependencyEdge>{{0, 1, true}});
        out.emplace_back(
            "ping-ack",
            std::vector<EventNode>{{ping, 0}, {ack, 0}},
            std::vector<DependencyEdge>{{0, 1, true}});
        return out;
    }

    static MonitorConfig
    config(bool with_profile)
    {
        MonitorConfig out;
        out.timeoutSeconds = 50.0;
        if (with_profile) {
            LatencyProfile profile;
            profile.task = "ping-pong";
            profile.runs = 4;
            profile.total = {4, 0.5, 1.0, 1.0, 1.0};
            profile.edges[{0, 1}] = profile.total;
            out.latencyProfiles = {profile};
        }
        return out;
    }

    static std::string
    uuid(int which)
    {
        char buf[37];
        std::snprintf(buf, sizeof buf,
                      "%08d-aaaa-bbbb-cccc-dddddddddddd", which);
        return buf;
    }

    /**
     * Randomized interleaved workload: ping always opens; roughly
     * half the tasks complete via pong or ack, some after a latency
     * that trips the (profiled) budget, and the rest are left to time
     * out — so Accepted, Timeout and LatencyAnomaly verdicts all
     * appear in the stream the fidelity property compares.
     */
    std::vector<logging::LogRecord>
    workload(std::uint64_t seed, int tasks)
    {
        common::Rng rng(seed);
        std::vector<logging::LogRecord> records;
        logging::RecordId next = 1;
        double t = 0.0;
        auto make = [&](const std::string &service,
                        const std::string &body) {
            logging::LogRecord record;
            record.id = next++;
            record.timestamp = (t += 0.25);
            record.node = "controller";
            record.service = service;
            record.level = logging::LogLevel::Info;
            record.body = body;
            return record;
        };
        std::vector<int> open;
        for (int task = 1; task <= tasks; ++task) {
            records.push_back(
                make("svc-a", "ping " + uuid(task)));
            open.push_back(task);
            while (open.size() > 3) {
                std::size_t pick = static_cast<std::size_t>(
                    rng.uniformInt(
                        0, static_cast<int>(open.size()) - 1));
                int closing = open[pick];
                open.erase(open.begin() +
                           static_cast<std::ptrdiff_t>(pick));
                int how = rng.uniformInt(0, 3);
                if (how == 3)
                    t += 3.0; // blows the profiled 1s budget
                records.push_back(
                    make(how == 1 ? "svc-c" : "svc-b",
                         (how == 1 ? "ack " : "pong ") +
                             uuid(closing)));
            }
        }
        return records;
    }

    static std::string
    render(const std::vector<MonitorReport> &reports,
           const std::shared_ptr<logging::TemplateCatalog> &catalog)
    {
        std::string out;
        for (const MonitorReport &report : reports) {
            out += reportToJson(report, *catalog);
            out += "\n";
        }
        return out;
    }
};

} // namespace

TEST_F(VaultMonitorTest, MonitorSaveRestoreMidStreamIsIdentity)
{
    std::vector<logging::LogRecord> records = workload(11, 16);
    WorkflowMonitor a(config(false), catalog, automata());
    WorkflowMonitor b(config(false), catalog, automata());
    std::size_t half = records.size() / 2;
    for (std::size_t i = 0; i < half; ++i)
        a.feed(records[i]);

    common::BinWriter out;
    a.saveState(out);
    common::BinReader in(out.bytes());
    ASSERT_TRUE(b.restoreState(in));

    // From here on the two monitors must be indistinguishable.
    std::string left, right;
    for (std::size_t i = half; i < records.size(); ++i) {
        left += render(a.feed(records[i]), catalog);
        right += render(b.feed(records[i]), catalog);
    }
    left += render(a.finish(), catalog);
    right += render(b.finish(), catalog);
    EXPECT_EQ(left, right);
    EXPECT_FALSE(left.empty());
    EXPECT_EQ(a.stats().accepted, b.stats().accepted);
    EXPECT_EQ(a.lastTime(), b.lastTime());
}

TEST_F(VaultMonitorTest, DisabledVaultIsNullSink)
{
    VaultDir dir("vault_nullsink");
    std::vector<logging::LogRecord> records = workload(3, 10);

    WorkflowMonitor bare(config(false), catalog, automata());
    vault::VaultedMonitor vaulted({}, config(false), catalog,
                                  automata());
    EXPECT_FALSE(vaulted.enabled());
    EXPECT_FALSE(vaulted.recovery().attempted);
    EXPECT_FALSE(vaulted.checkpoint());

    std::string left, right;
    for (const logging::LogRecord &record : records) {
        left += render(bare.feed(record), catalog);
        right += render(vaulted.feed(record), catalog);
    }
    left += render(bare.finish(), catalog);
    right += render(vaulted.finish(), catalog);
    EXPECT_EQ(left, right);
    EXPECT_EQ(vaulted.stats().walAppends, 0u);
    EXPECT_EQ(vaulted.stats().checkpointsTaken, 0u);
    // Nothing durability-related ever touched the filesystem.
    EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

/**
 * The headline property (satellite of DESIGN.md §13): kill a vaulted
 * monitor at a random point — optionally tearing the ledger tail the
 * way a crash mid-append would — reconstruct it over the same
 * directory, and the restored monitor's verdicts are bit-identical
 * to an uninterrupted reference run: replayed-tail reports match the
 * reference for the same seq range, and every subsequent input
 * (including resends of inputs lost to the torn tail) produces the
 * reference report stream, through finish().
 */
TEST_F(VaultMonitorTest, KillRestoreFidelityAtRandomPoints)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        bool with_profile = seed % 2 == 1; // odd seeds arm seer-flight
        bool tear_tail = seed % 3 == 0;
        std::vector<logging::LogRecord> records =
            workload(seed * 977, 20);

        // Uninterrupted reference over the identical model/config,
        // reports indexed by input seq (1-based, as the ledger's).
        WorkflowMonitor reference(config(with_profile), catalog,
                                  automata());
        std::vector<std::string> refBySeq(records.size() + 1);
        for (std::size_t i = 0; i < records.size(); ++i)
            refBySeq[i + 1] = render(reference.feed(records[i]),
                                     catalog);

        VaultDir dir("vault_fidelity_" + std::to_string(seed));
        vault::VaultConfig vault_config;
        vault_config.directory = dir.path;
        common::Rng rng(seed);
        vault_config.checkpointEveryRecords =
            static_cast<std::uint64_t>(rng.uniformInt(0, 9));
        std::size_t kill_at = static_cast<std::size_t>(rng.uniformInt(
            1, static_cast<int>(records.size()) - 2));

        auto vaulted = std::make_unique<vault::VaultedMonitor>(
            vault_config, config(with_profile), catalog, automata());
        for (std::size_t i = 0; i < kill_at; ++i) {
            std::string got = render(vaulted->feed(records[i]),
                                     catalog);
            ASSERT_EQ(got, refBySeq[i + 1])
                << "seed " << seed << " pre-kill input " << i;
        }
        vaulted.reset(); // the kill (destructor flushes the batch)
        if (tear_tail) {
            // Simulate a crash mid-append: chop bytes off the ledger
            // and smear garbage over the cut.
            std::string wal = vault::ledgerPath(dir.path);
            auto size = std::filesystem::file_size(wal);
            if (size > 40)
                std::filesystem::resize_file(wal, size - 11);
            std::ofstream smear(wal,
                                std::ios::binary | std::ios::app);
            smear << "\x07garbage";
        }

        auto restored = std::make_unique<vault::VaultedMonitor>(
            vault_config, config(with_profile), catalog, automata());
        const vault::RecoverResult &rec = restored->recovery();
        ASSERT_TRUE(rec.attempted) << "seed " << seed;
        ASSERT_TRUE(rec.recovered)
            << "seed " << seed << ": " << rec.error;
        ASSERT_LE(rec.lastReplayedSeq, kill_at) << "seed " << seed;

        // Gate 1: the replayed tail re-emitted exactly the reports
        // the reference produced for those seqs.
        std::string expectReplay;
        for (std::uint64_t s = rec.checkpointSeq + 1;
             s <= rec.lastReplayedSeq; ++s)
            expectReplay += refBySeq[s];
        EXPECT_EQ(render(rec.replayReports, catalog), expectReplay)
            << "seed " << seed;

        // Gate 2: inputs lost to the torn tail are resent (the
        // restored monitor hands out the same seqs it lost), then
        // the rest of the stream continues — every report must match
        // the reference, through finish().
        for (std::size_t s = rec.lastReplayedSeq + 1;
             s <= records.size(); ++s) {
            std::string got =
                render(restored->feed(records[s - 1]), catalog);
            ASSERT_EQ(got, refBySeq[s])
                << "seed " << seed << " post-restore seq " << s;
        }
        EXPECT_EQ(render(restored->finish(), catalog),
                  render(reference.finish(), catalog))
            << "seed " << seed;
    }
}

TEST_F(VaultMonitorTest, RecoveryRefusesModelFingerprintMismatch)
{
    VaultDir dir("vault_mismatch");
    vault::VaultConfig vault_config;
    vault_config.directory = dir.path;
    std::vector<logging::LogRecord> records = workload(5, 8);
    {
        vault::VaultedMonitor vaulted(vault_config, config(false),
                                      catalog, automata());
        for (const logging::LogRecord &record : records)
            vaulted.feed(record);
    }

    // Reconstruct against a different model: recovery must refuse
    // (no silent verdicts from someone else's state) and fall back
    // to a fresh monitor that still works.
    logging::TemplateId solo = catalog->intern("svc-z", "solo <uuid>");
    std::vector<TaskAutomaton> other;
    other.emplace_back("solo",
                       std::vector<EventNode>{{solo, 0}},
                       std::vector<DependencyEdge>{});
    vault::VaultedMonitor restored(vault_config, config(false),
                                   catalog, std::move(other));
    EXPECT_TRUE(restored.recovery().attempted);
    EXPECT_FALSE(restored.recovery().recovered);
    EXPECT_NE(restored.recovery().error.find("fingerprint"),
              std::string::npos)
        << restored.recovery().error;
    // Nothing from the incompatible history was replayed; the
    // refused files were set aside for autopsy, not overwritten.
    EXPECT_EQ(restored.recovery().replayedInputs, 0u);
    EXPECT_TRUE(std::filesystem::exists(
        vault::checkpointPath(dir.path) + ".refused"));
    EXPECT_TRUE(std::filesystem::exists(
        vault::ledgerPath(dir.path) + ".refused"));
    restored.feedLine("bogus line");
    EXPECT_EQ(restored.monitor().malformedLines(), 1u);
}
