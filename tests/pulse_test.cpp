/**
 * @file
 * Unit and differential tests for seer-pulse (DESIGN.md §16): the
 * rolling-window rate engine, the pending → firing → resolved alert
 * lifecycle (hysteresis band and min-hold included), the rules-file
 * parser, the scrape endpoint end-to-end over real HTTP, and the
 * serial-vs-sharded ALERT differential that pins the message-clock
 * determinism claim — one stream, two engines, byte-identical alert
 * records.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/http_server.hpp"
#include "core/monitor/workflow_monitor.hpp"
#include "obs/pulse.hpp"

using namespace cloudseer;
using namespace cloudseer::obs;

namespace {

/** A health sample with only the fields the rate engine reads. */
HealthSample
sampleAt(double t)
{
    HealthSample s;
    s.time = t;
    return s;
}

/** PulseRates carrying one signal at `value` (all others zero). */
PulseRates
ratesAt(double t, PulseSignal signal, double value)
{
    PulseRates r;
    r.time = t;
    r.value[static_cast<std::size_t>(signal)] = value;
    r.ewma[static_cast<std::size_t>(signal)] = value;
    return r;
}

} // namespace

// --- RateEngine -------------------------------------------------------

TEST(RateEngineTest, PerMessageAndPerSecondRates)
{
    RateEngine engine(60.0, 0.2);
    engine.observe(sampleAt(0.0));

    HealthSample s = sampleAt(10.0);
    s.messages = 100;
    s.recoveredPassUnknown = 5;
    s.recoveredOtherSet = 2;
    s.recoveredFalseDependency = 1;
    s.errorsReported = 1;
    s.timeoutsReported = 2;
    s.groupsShed = 20;
    s.memoryEvictions = 10;
    s.forcedReleases = 5;
    s.walAppendP99us = 42.0;
    s.feedP99us = 7.0;
    const PulseRates &r = engine.observe(s);

    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::TemplateMissRate), 0.05);
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::DivergenceRecoveryRate),
                     0.03);
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::ErrorRate), 0.01);
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::TimeoutRate), 0.02);
    // Shed and backpressure are per second, not per message.
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::ShedRate), 3.0);
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::BackpressureRate), 0.5);
    // Latency signals are levels from the newest sample.
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::WalAppendP99Us), 42.0);
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::FeedP99Us), 7.0);
    EXPECT_EQ(r.shedDelta, 20u);
    EXPECT_EQ(r.evictionDelta, 10u);
    EXPECT_EQ(r.forcedReleaseDelta, 5u);
}

TEST(RateEngineTest, WindowSlidesOldSamplesOut)
{
    RateEngine engine(10.0, 0.2);
    HealthSample a = sampleAt(0.0);
    HealthSample b = sampleAt(5.0);
    b.messages = 50;
    HealthSample c = sampleAt(10.0);
    c.messages = 100;
    HealthSample d = sampleAt(20.0);
    d.messages = 400;
    d.errorsReported = 30;
    engine.observe(a);
    engine.observe(b);
    engine.observe(c);
    const PulseRates &r = engine.observe(d);

    // Samples at t=0 and t=5 are more than windowSeconds behind the
    // newest anchor; the window keeps [10, 20] only.
    EXPECT_EQ(r.samplesInWindow, 2u);
    EXPECT_DOUBLE_EQ(r.windowSeconds, 10.0);
    // Error rate over the retained span: 30 errors / 300 messages.
    EXPECT_DOUBLE_EQ(r.valueOf(PulseSignal::ErrorRate), 0.1);
}

TEST(RateEngineTest, EwmaSeedsOnFirstObserveThenSmooths)
{
    RateEngine engine(60.0, 0.5);
    HealthSample a = sampleAt(0.0);
    engine.observe(a);

    HealthSample b = sampleAt(1.0);
    b.messages = 10;
    b.errorsReported = 10; // error rate 1.0
    const PulseRates &r1 = engine.observe(b);
    // Window [0,1]: the second observation's value is the first
    // non-trivial rate; EWMA was seeded with the first (all-zero)
    // evaluation, so it now blends toward 1.0 at alpha=0.5.
    EXPECT_DOUBLE_EQ(r1.valueOf(PulseSignal::ErrorRate), 1.0);
    EXPECT_DOUBLE_EQ(r1.ewmaOf(PulseSignal::ErrorRate), 0.5);

    HealthSample c = sampleAt(2.0);
    c.messages = 20;
    c.errorsReported = 10; // no new errors
    const PulseRates &r2 = engine.observe(c);
    EXPECT_DOUBLE_EQ(r2.valueOf(PulseSignal::ErrorRate), 0.5);
    EXPECT_DOUBLE_EQ(r2.ewmaOf(PulseSignal::ErrorRate), 0.5);
}

// --- AlertEngine lifecycle --------------------------------------------

TEST(AlertEngineTest, EveryDefaultRuleWalksTheFullLifecycle)
{
    // Each default rule is driven alone through pending → firing →
    // resolved, respecting its own pending age, hysteresis band, and
    // min-hold — the acceptance contract for the default pack.
    for (const AlertRule &rule : defaultAlertRules()) {
        SCOPED_TRACE(rule.name);
        AlertEngine engine({rule});
        double above = rule.threshold > 0.0 ? rule.threshold * 2.0
                                            : 1.0;

        double t = 100.0;
        std::vector<AlertRecord> first =
            engine.evaluate(ratesAt(t, rule.signal, above));
        ASSERT_EQ(first.size(), 1u);
        EXPECT_EQ(first[0].rule, rule.name);
        EXPECT_EQ(first[0].state,
                  rule.pendingSeconds > 0.0 ? "pending" : "firing");
        EXPECT_DOUBLE_EQ(first[0].since, t);

        if (rule.pendingSeconds > 0.0) {
            // Still pending while younger than pendingSeconds.
            EXPECT_TRUE(engine
                            .evaluate(ratesAt(
                                t + rule.pendingSeconds / 2.0,
                                rule.signal, above))
                            .empty());
            t += rule.pendingSeconds;
            std::vector<AlertRecord> fired =
                engine.evaluate(ratesAt(t, rule.signal, above));
            ASSERT_EQ(fired.size(), 1u);
            EXPECT_EQ(fired[0].state, "firing");
        }
        EXPECT_TRUE(engine.anyFiring());

        // Below the hysteresis bound but inside the min-hold: the
        // page must not flap shut.
        EXPECT_TRUE(engine
                        .evaluate(ratesAt(t + rule.holdSeconds / 2.0,
                                          rule.signal, 0.0))
                        .empty());
        EXPECT_TRUE(engine.anyFiring());

        t += rule.holdSeconds;
        std::vector<AlertRecord> resolved =
            engine.evaluate(ratesAt(t, rule.signal, 0.0));
        ASSERT_EQ(resolved.size(), 1u);
        EXPECT_EQ(resolved[0].state, "resolved");
        EXPECT_FALSE(engine.anyFiring());
    }
}

TEST(AlertEngineTest, HysteresisBandKeepsThePageOpen)
{
    AlertRule rule;
    rule.name = "err";
    rule.signal = PulseSignal::ErrorRate;
    rule.threshold = 0.10;
    rule.pendingSeconds = 0.0;
    rule.holdSeconds = 5.0;
    rule.resolveRatio = 0.5;
    AlertEngine engine({rule});

    engine.evaluate(ratesAt(0.0, rule.signal, 0.2)); // firing
    EXPECT_TRUE(engine.anyFiring());
    // 0.06 is below threshold but above 0.5 * 0.10: inside the
    // hysteresis band, long past the hold — must stay firing.
    EXPECT_TRUE(
        engine.evaluate(ratesAt(100.0, rule.signal, 0.06)).empty());
    EXPECT_TRUE(engine.anyFiring());
    // Below the band: resolves (hold long since satisfied).
    std::vector<AlertRecord> resolved =
        engine.evaluate(ratesAt(101.0, rule.signal, 0.04));
    ASSERT_EQ(resolved.size(), 1u);
    EXPECT_EQ(resolved[0].state, "resolved");
}

TEST(AlertEngineTest, CancelledPendingIsSilent)
{
    AlertRule rule;
    rule.name = "miss";
    rule.signal = PulseSignal::TemplateMissRate;
    rule.threshold = 0.05;
    rule.pendingSeconds = 10.0;
    AlertEngine engine({rule});

    std::vector<AlertRecord> pending =
        engine.evaluate(ratesAt(0.0, rule.signal, 0.2));
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].state, "pending");
    // Drops below threshold before the pending age passes: no record
    // (it never paged anyone), state back to inactive.
    EXPECT_TRUE(
        engine.evaluate(ratesAt(5.0, rule.signal, 0.0)).empty());
    EXPECT_FALSE(engine.anyFiring());
    // A later excursion starts a fresh pending with a fresh since.
    std::vector<AlertRecord> again =
        engine.evaluate(ratesAt(50.0, rule.signal, 0.2));
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].state, "pending");
    EXPECT_DOUBLE_EQ(again[0].since, 50.0);
}

TEST(AlertEngineTest, EwmaRuleEvaluatesTheSmoothedSeries)
{
    AlertRule rule;
    rule.name = "err-ewma";
    rule.signal = PulseSignal::ErrorRate;
    rule.threshold = 0.10;
    rule.useEwma = true;
    AlertEngine engine({rule});

    PulseRates spike = ratesAt(0.0, rule.signal, 0.5);
    spike.ewma[static_cast<std::size_t>(rule.signal)] = 0.05;
    // Window value spikes but the EWMA stays calm: no alert.
    EXPECT_TRUE(engine.evaluate(spike).empty());
    spike.ewma[static_cast<std::size_t>(rule.signal)] = 0.2;
    EXPECT_EQ(engine.evaluate(spike).size(), 1u);
}

// --- rules parser -----------------------------------------------------

TEST(AlertRulesParserTest, ParsesACompleteRulePack)
{
    const std::string text =
        "# paging rules\n"
        "rule err signal=error_rate threshold=0.02 pending=30 "
        "hold=60 resolve=0.4\n"
        "\n"
        "rule wal signal=wal_append_p99_us threshold=500 ewma\n";
    std::vector<AlertRule> rules;
    std::string error;
    ASSERT_TRUE(parseAlertRules(text, rules, error)) << error;
    ASSERT_EQ(rules.size(), 2u);
    EXPECT_EQ(rules[0].name, "err");
    EXPECT_EQ(rules[0].signal, PulseSignal::ErrorRate);
    EXPECT_DOUBLE_EQ(rules[0].threshold, 0.02);
    EXPECT_DOUBLE_EQ(rules[0].pendingSeconds, 30.0);
    EXPECT_DOUBLE_EQ(rules[0].holdSeconds, 60.0);
    EXPECT_DOUBLE_EQ(rules[0].resolveRatio, 0.4);
    EXPECT_FALSE(rules[0].useEwma);
    EXPECT_EQ(rules[1].signal, PulseSignal::WalAppendP99Us);
    EXPECT_TRUE(rules[1].useEwma);
}

TEST(AlertRulesParserTest, RejectsUnknownSignalWithLineNumber)
{
    std::vector<AlertRule> rules;
    std::string error;
    EXPECT_FALSE(parseAlertRules(
        "rule ok signal=error_rate threshold=0.1\n"
        "rule bad signal=cpu_rate threshold=0.1\n",
        rules, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(AlertRulesParserTest, RejectsAnEmptyPack)
{
    std::vector<AlertRule> rules;
    std::string error;
    EXPECT_FALSE(parseAlertRules("# only comments\n", rules, error));
    EXPECT_FALSE(error.empty());
}

TEST(PulseSignalTest, NamesRoundTripAndClassify)
{
    for (std::size_t i = 0; i < kPulseSignalCount; ++i) {
        PulseSignal signal = static_cast<PulseSignal>(i);
        PulseSignal parsed;
        ASSERT_TRUE(
            parsePulseSignal(pulseSignalName(signal), parsed));
        EXPECT_EQ(parsed, signal);
    }
    EXPECT_TRUE(pulseSignalIsWallClock(PulseSignal::WalAppendP99Us));
    EXPECT_TRUE(pulseSignalIsWallClock(PulseSignal::FeedP99Us));
    EXPECT_FALSE(pulseSignalIsWallClock(PulseSignal::ShedRate));
    // The deterministic default pack never touches wall-clock
    // signals — that is what makes serial/sharded alerts identical.
    for (const AlertRule &rule : defaultAlertRules())
        EXPECT_FALSE(pulseSignalIsWallClock(rule.signal))
            << rule.name;
}

// --- PulseEngine ------------------------------------------------------

TEST(PulseEngineTest, DrainsAlertLinesAndLogsToFile)
{
    std::string log_path =
        (std::filesystem::temp_directory_path() /
         "cloudseer_pulse_alerts.jsonl")
            .string();
    std::filesystem::remove(log_path);

    PulseConfig config;
    config.enabled = true;
    config.windowSeconds = 10.0;
    config.alertLogPath = log_path;
    PulseEngine engine(config);

    engine.observe(sampleAt(0.0));
    HealthSample shed = sampleAt(1.0);
    shed.messages = 10;
    shed.groupsShed = 3;
    engine.observe(shed); // shed_burn: threshold 0, fires immediately

    std::vector<std::string> lines = engine.drainAlertLines();
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines[0].find("\"kind\":\"ALERT\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"rule\":\"shed_burn\""),
              std::string::npos);
    EXPECT_TRUE(engine.drainAlertLines().empty()) << "second drain";
    EXPECT_TRUE(engine.degraded());

    std::ifstream log_in(log_path);
    std::string logged;
    ASSERT_TRUE(std::getline(log_in, logged));
    EXPECT_EQ(logged, lines[0]);
    std::filesystem::remove(log_path);
}

TEST(PulseEngineTest, HealthzReflectsWindowDegradation)
{
    PulseConfig config;
    config.enabled = true;
    config.windowSeconds = 5.0;
    PulseEngine engine(config);

    engine.observe(sampleAt(0.0));
    EXPECT_FALSE(engine.degraded());
    EXPECT_NE(engine.healthzJson().find("\"status\":\"ok\""),
              std::string::npos);

    HealthSample bad = sampleAt(1.0);
    bad.forcedReleases = 2;
    engine.observe(bad);
    EXPECT_TRUE(engine.degraded());
    EXPECT_NE(engine.healthzJson().find("\"status\":\"degraded\""),
              std::string::npos);
}

// --- scrape endpoint over real HTTP -----------------------------------

TEST(TelemetryServerTest, ServesPublishedDocumentsOverHttp)
{
    TelemetryServer server("127.0.0.1", 0);
    ASSERT_TRUE(server.start()) << server.error();
    ASSERT_GT(server.port(), 0);

    int status = 0;
    std::string body;
    // Nothing published yet: every endpoint answers 503.
    ASSERT_TRUE(common::httpGet("127.0.0.1", server.port(),
                                "/metrics", status, body));
    EXPECT_EQ(status, 503);

    TelemetryServer::Documents docs;
    docs.metrics = "seer_up 1\n";
    docs.healthz = "{\"status\":\"ok\"}";
    docs.alerts = "{\"active\":[]}";
    docs.buildz = "{\"version\":\"test\"}";
    server.publish(std::move(docs));

    ASSERT_TRUE(common::httpGet("127.0.0.1", server.port(),
                                "/metrics", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "seer_up 1\n");
    ASSERT_TRUE(common::httpGet("127.0.0.1", server.port(),
                                "/healthz", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "{\"status\":\"ok\"}");
    ASSERT_TRUE(common::httpGet("127.0.0.1", server.port(),
                                "/nowhere", status, body));
    EXPECT_EQ(status, 404);
    server.stop();
    EXPECT_FALSE(server.running());
}

// --- monitor integration ----------------------------------------------

namespace {

/** Ping-pong monitor fixture with the pulse plane armed. */
class PulseMonitorTest : public ::testing::Test
{
  protected:
    std::shared_ptr<logging::TemplateCatalog> catalog =
        std::make_shared<logging::TemplateCatalog>();
    logging::RecordId nextRecord = 1;

    std::vector<core::TaskAutomaton>
    pingPong()
    {
        logging::TemplateId ping =
            catalog->intern("svc-a", "ping <uuid>");
        logging::TemplateId pong =
            catalog->intern("svc-b", "pong <uuid>");
        std::vector<core::TaskAutomaton> automata;
        automata.emplace_back(
            "ping-pong",
            std::vector<core::EventNode>{{ping, 0}, {pong, 0}},
            std::vector<core::DependencyEdge>{{0, 1, true}});
        return automata;
    }

    logging::LogRecord
    record(const std::string &service, const std::string &body,
           double t)
    {
        logging::LogRecord out;
        out.id = nextRecord++;
        out.timestamp = t;
        out.node = "controller";
        out.service = service;
        out.level = logging::LogLevel::Info;
        out.body = body;
        return out;
    }

    static std::string
    uuid(int which)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      "%08x-1111-1111-1111-111111111111",
                      static_cast<unsigned>(which));
        return buf;
    }
};

} // namespace

TEST_F(PulseMonitorTest, PulseOffByDefaultAndReportsIdentically)
{
    core::MonitorConfig bare_config;
    core::WorkflowMonitor bare(bare_config, catalog, pingPong());
    EXPECT_FALSE(bare.pulseEnabled());
    EXPECT_EQ(bare.pulse(), nullptr);
    EXPECT_EQ(bare.pulsePort(), -1);
    EXPECT_TRUE(bare.drainAlertJson().empty());
    EXPECT_EQ(bare.healthzJson(), "");

    core::MonitorConfig pulse_config;
    pulse_config.pulse.enabled = true;
    pulse_config.pulse.windowSeconds = 6.0;
    core::WorkflowMonitor pulsed(pulse_config, catalog, pingPong());
    EXPECT_TRUE(pulsed.pulseEnabled());

    // The identical stream through both monitors: reports and
    // checker counters must not see the pulse plane at all.
    auto drive = [&](core::WorkflowMonitor &monitor) {
        std::vector<std::string> kinds;
        nextRecord = 1;
        for (int i = 0; i < 40; ++i) {
            double t = 0.5 * i;
            auto r1 = monitor.feed(
                record("svc-a", "ping " + uuid(i), t));
            auto r2 = monitor.feed(
                record("svc-b", "pong " + uuid(i), t + 0.1));
            for (const auto &rep : r1)
                kinds.push_back(rep.summary(*catalog));
            for (const auto &rep : r2)
                kinds.push_back(rep.summary(*catalog));
        }
        for (const auto &rep : monitor.finish())
            kinds.push_back(rep.summary(*catalog));
        return kinds;
    };
    EXPECT_EQ(drive(bare), drive(pulsed));
    EXPECT_EQ(bare.stats().accepted, pulsed.stats().accepted);
}

TEST_F(PulseMonitorTest, ShedBurstFlipsHealthzAndEmitsAlerts)
{
    core::MonitorConfig config;
    config.timeoutSeconds = 100.0;
    config.ingest.maxActiveGroups = 4;
    config.pulse.enabled = true;
    config.pulse.windowSeconds = 6.0; // snapshots every 1 s of clock
    core::WorkflowMonitor monitor(config, catalog, pingPong());

    std::vector<std::string> alerts;
    // 30 half-open groups over 15 s of message clock: the cap sheds
    // most of them, snapshots fire each second, shed_burn pages.
    for (int i = 0; i < 30; ++i) {
        monitor.feed(record("svc-a", "ping " + uuid(i), 0.5 * i));
        for (std::string &line : monitor.drainAlertJson())
            alerts.push_back(std::move(line));
    }
    ASSERT_FALSE(alerts.empty());
    EXPECT_NE(alerts[0].find("\"rule\":\"shed_burn\""),
              std::string::npos);
    EXPECT_NE(alerts[0].find("\"state\":\"firing\""),
              std::string::npos);
    EXPECT_NE(monitor.healthzJson().find("\"status\":\"degraded\""),
              std::string::npos);
    EXPECT_NE(monitor.buildzJson().find("\"modelFingerprint\""),
              std::string::npos);
}

TEST_F(PulseMonitorTest, ScrapeEndpointServesLiveMonitorState)
{
    core::MonitorConfig config;
    config.pulse.enabled = true;
    config.pulse.windowSeconds = 6.0;
    config.pulse.httpPort = 0; // ephemeral
    config.pulse.stageSampleEvery = 1;
    core::WorkflowMonitor monitor(config, catalog, pingPong());
    int port = monitor.pulsePort();
    ASSERT_GT(port, 0);

    for (int i = 0; i < 10; ++i) {
        monitor.feed(record("svc-a", "ping " + uuid(i), 0.5 * i));
        monitor.feed(record("svc-b", "pong " + uuid(i), 0.5 * i + 0.1));
    }
    monitor.publishPulse();

    int status = 0;
    std::string body;
    ASSERT_TRUE(common::httpGet("127.0.0.1",
                                static_cast<std::uint16_t>(port),
                                "/metrics", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("seer_accepted_total 10"), std::string::npos)
        << body;
    EXPECT_NE(body.find("seer_build_info{"), std::string::npos);
    // The sampled stage timers made it into the exposition.
    EXPECT_NE(body.find("seer_stage_check_us_count"),
              std::string::npos);

    ASSERT_TRUE(common::httpGet("127.0.0.1",
                                static_cast<std::uint16_t>(port),
                                "/healthz", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);

    ASSERT_TRUE(common::httpGet("127.0.0.1",
                                static_cast<std::uint16_t>(port),
                                "/alerts", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"active\":["), std::string::npos);

    ASSERT_TRUE(common::httpGet("127.0.0.1",
                                static_cast<std::uint16_t>(port),
                                "/buildz", status, body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"modelFingerprint\""), std::string::npos);
}

// --- serial vs sharded ALERT differential -----------------------------

TEST_F(PulseMonitorTest, SerialAndShardedEmitIdenticalAlertRecords)
{
    auto run = [&](std::size_t shards) {
        core::MonitorConfig config;
        config.timeoutSeconds = 5.0;
        config.ingest.maxActiveGroups = 4;
        config.ingest.numShards = shards;
        config.pulse.enabled = true;
        config.pulse.windowSeconds = 6.0;
        core::WorkflowMonitor monitor(config, catalog, pingPong());
        std::vector<std::string> alerts;
        nextRecord = 1;
        for (int i = 0; i < 120; ++i) {
            double t = 0.25 * i;
            // Mostly half-open groups (cap pressure + timeouts), a
            // few completed pairs so several signals move at once.
            monitor.feed(record("svc-a", "ping " + uuid(i), t));
            if (i % 5 == 0)
                monitor.feed(
                    record("svc-b", "pong " + uuid(i), t + 0.05));
            for (std::string &line : monitor.drainAlertJson())
                alerts.push_back(std::move(line));
        }
        monitor.finish();
        for (std::string &line : monitor.drainAlertJson())
            alerts.push_back(std::move(line));
        return alerts;
    };

    std::vector<std::string> serial = run(0);
    std::vector<std::string> sharded = run(2);
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial, sharded);
}
